//! Plain-CSV export of per-query records, for offline analysis/plotting.
//!
//! Hand-rolled (the schema is fixed and purely numeric) to keep the
//! dependency set at the approved offline crates.

use crate::outcome::{QueryOutcome, QueryRecord};
use std::io::{self, Write};
use std::path::Path;

/// CSV header matching [`record_row`].
pub const CSV_HEADER: &str =
    "id,arrival_s,deadline_s,completion_s,outcome,correct,score,latency_s,models_used";

/// One record as a CSV row (no trailing newline).
pub fn record_row(r: &QueryRecord) -> String {
    let (outcome, correct, score) = match r.outcome {
        QueryOutcome::Completed { correct, score } => {
            ("completed", u8::from(correct).to_string(), format!("{score:.6}"))
        }
        QueryOutcome::Degraded { correct, score } => {
            ("degraded", u8::from(correct).to_string(), format!("{score:.6}"))
        }
        QueryOutcome::Missed => ("missed", "0".to_string(), "0".to_string()),
    };
    format!(
        "{},{:.6},{:.6},{},{},{},{},{},{}",
        r.id,
        r.arrival.as_secs_f64(),
        r.deadline.as_secs_f64(),
        r.completion.map_or(String::new(), |c| format!("{:.6}", c.as_secs_f64())),
        outcome,
        correct,
        score,
        r.latency_secs().map_or(String::new(), |l| format!("{l:.6}")),
        r.models_used,
    )
}

/// Serialises records to CSV (header + one row per record).
pub fn to_csv(records: &[QueryRecord]) -> String {
    let mut out = String::with_capacity(64 * (records.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&record_row(r));
        out.push('\n');
    }
    out
}

/// Writes records to a CSV file (buffered).
pub fn write_csv(path: &Path, records: &[QueryRecord]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    w.write_all(to_csv(records).as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_sim::SimTime;

    fn record(completed: bool) -> QueryRecord {
        QueryRecord {
            id: 7,
            arrival: SimTime::from_millis(1500),
            deadline: SimTime::from_millis(1600),
            completion: completed.then_some(SimTime::from_millis(1550)),
            outcome: if completed {
                QueryOutcome::Completed { correct: true, score: 1.0 }
            } else {
                QueryOutcome::Missed
            },
            models_used: 2,
        }
    }

    #[test]
    fn rows_have_header_arity() {
        let cols = CSV_HEADER.split(',').count();
        for r in [record(true), record(false)] {
            assert_eq!(record_row(&r).split(',').count(), cols, "row arity mismatch");
        }
    }

    #[test]
    fn completed_row_contents() {
        let row = record_row(&record(true));
        assert!(row.starts_with("7,1.500000,1.600000,1.550000,completed,1,1.000000"));
        assert!(row.ends_with(",0.050000,2"));
    }

    #[test]
    fn missed_row_has_empty_completion_and_latency() {
        let row = record_row(&record(false));
        assert!(row.contains(",,missed,0,0,,2"), "row was: {row}");
    }

    #[test]
    fn to_csv_has_one_line_per_record_plus_header() {
        let csv = to_csv(&[record(true), record(false)]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with(CSV_HEADER));
    }

    #[test]
    fn write_csv_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("schemble-export-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("records.csv");
        write_csv(&path, &[record(true)]).expect("write");
        let read = std::fs::read_to_string(&path).expect("read");
        assert_eq!(read, to_csv(&[record(true)]));
        let _ = std::fs::remove_file(&path);
    }
}
