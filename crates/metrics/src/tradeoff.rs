//! The latency/accuracy trade-off objective of Fig. 11/15.
//!
//! `c = 100·Acc − λ·Latency`, with accuracy in `[0, 1]` and latency in
//! seconds. A larger `c` is a better trade-off; the weight λ expresses how
//! much one second of mean latency is worth in accuracy points.

/// Computes `c = 100·accuracy − lambda·latency_secs`.
pub fn tradeoff_objective(accuracy: f64, latency_secs: f64, lambda: f64) -> f64 {
    100.0 * accuracy - lambda * latency_secs
}

/// For a set of candidate `(name, accuracy, latency)` points, the name of the
/// objective-maximising one at weight `lambda`. Ties break toward the earlier
/// entry.
pub fn best_at_lambda<'a>(points: &'a [(&'a str, f64, f64)], lambda: f64) -> &'a str {
    assert!(!points.is_empty(), "no candidate points");
    points
        .iter()
        .max_by(|a, b| {
            tradeoff_objective(a.1, a.2, lambda)
                .partial_cmp(&tradeoff_objective(b.1, b.2, lambda))
                .expect("NaN objective")
        })
        .expect("non-empty")
        .0
}

/// The λ interval (within `[lo, hi]`, scanned at `steps` points) on which
/// `candidate` is the objective-maximiser — the "extensive range of weights"
/// statement of Exp-2. Returns `None` if it never wins.
pub fn winning_lambda_range(
    points: &[(&str, f64, f64)],
    candidate: &str,
    lo: f64,
    hi: f64,
    steps: usize,
) -> Option<(f64, f64)> {
    assert!(steps >= 2 && hi > lo);
    let mut min_win = None;
    let mut max_win = None;
    for i in 0..steps {
        // Geometric scan: the paper's ranges span several orders of magnitude.
        let lambda = lo * (hi / lo).powf(i as f64 / (steps - 1) as f64);
        if best_at_lambda(points, lambda) == candidate {
            min_win.get_or_insert(lambda);
            max_win = Some(lambda);
        }
    }
    min_win.zip(max_win)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_formula() {
        assert!((tradeoff_objective(0.9, 0.5, 10.0) - 85.0).abs() < 1e-12);
        assert!((tradeoff_objective(1.0, 0.0, 100.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn best_flips_with_lambda() {
        // "accurate but slow" vs "fast but sloppy".
        let points = [("accurate", 0.95, 2.0), ("fast", 0.80, 0.05)];
        assert_eq!(best_at_lambda(&points, 0.1), "accurate");
        assert_eq!(best_at_lambda(&points, 100.0), "fast");
    }

    #[test]
    fn balanced_candidate_wins_a_middle_range() {
        let points = [("accurate", 0.97, 5.0), ("balanced", 0.95, 0.10), ("fast", 0.80, 0.05)];
        let range = winning_lambda_range(&points, "balanced", 0.01, 1000.0, 200).unwrap();
        assert!(range.0 < 1.0 && range.1 > 10.0, "balanced should win a wide band: {range:?}");
        // The extremes belong to the specialists.
        assert_eq!(best_at_lambda(&points, 0.01), "accurate");
        assert_eq!(best_at_lambda(&points, 1000.0), "fast");
    }

    #[test]
    fn never_winning_returns_none() {
        let points = [("a", 0.9, 0.1), ("dominated", 0.5, 1.0)];
        assert!(winning_lambda_range(&points, "dominated", 0.01, 100.0, 50).is_none());
    }
}
