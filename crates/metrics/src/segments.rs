//! Per-time-segment aggregation (Fig. 1a, 9, 14).

use crate::outcome::{QueryOutcome, QueryRecord};

/// Hourly (or arbitrary-segment) aggregates of a run.
#[derive(Debug, Clone)]
pub struct SegmentSeries {
    /// Queries per segment.
    pub counts: Vec<usize>,
    /// Accuracy per segment (missed = 0).
    pub accuracy: Vec<f64>,
    /// Deadline miss rate per segment.
    pub dmr: Vec<f64>,
    /// Mean latency (seconds, completed queries) per segment.
    pub mean_latency: Vec<f64>,
}

impl SegmentSeries {
    /// Buckets `records` into `num_segments` groups using `segment_of`
    /// (typically `DiurnalTrace::hour_of` on the arrival time).
    pub fn compute(
        records: &[QueryRecord],
        num_segments: usize,
        mut segment_of: impl FnMut(&QueryRecord) -> usize,
    ) -> Self {
        let mut counts = vec![0usize; num_segments];
        let mut score_sum = vec![0.0f64; num_segments];
        let mut missed = vec![0usize; num_segments];
        let mut lat_sum = vec![0.0f64; num_segments];
        let mut lat_n = vec![0usize; num_segments];
        for r in records {
            let s = segment_of(r);
            assert!(s < num_segments, "segment {s} out of range");
            counts[s] += 1;
            match r.outcome {
                QueryOutcome::Completed { score, .. } | QueryOutcome::Degraded { score, .. } => {
                    score_sum[s] += score
                }
                QueryOutcome::Missed => {}
            }
            if !r.met_deadline() {
                missed[s] += 1;
            }
            if let Some(l) = r.latency_secs() {
                lat_sum[s] += l;
                lat_n[s] += 1;
            }
        }
        let div = |num: f64, den: usize| if den == 0 { 0.0 } else { num / den as f64 };
        SegmentSeries {
            accuracy: (0..num_segments).map(|s| div(score_sum[s], counts[s])).collect(),
            dmr: (0..num_segments).map(|s| div(missed[s] as f64, counts[s])).collect(),
            mean_latency: (0..num_segments).map(|s| div(lat_sum[s], lat_n[s])).collect(),
            counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_sim::SimTime;

    fn rec(id: u64, hour: u64, hit: bool) -> QueryRecord {
        let arrival = SimTime::from_millis(hour * 3_600_000);
        QueryRecord {
            id,
            arrival,
            deadline: arrival + schemble_sim::SimDuration::from_millis(100),
            completion: hit.then_some(arrival + schemble_sim::SimDuration::from_millis(40)),
            outcome: if hit {
                QueryOutcome::Completed { correct: true, score: 1.0 }
            } else {
                QueryOutcome::Missed
            },
            models_used: 1,
        }
    }

    #[test]
    fn segments_bucket_correctly() {
        let records = vec![rec(0, 0, true), rec(1, 0, false), rec(2, 1, true)];
        let series =
            SegmentSeries::compute(&records, 2, |r| (r.arrival.as_secs_f64() / 3600.0) as usize);
        assert_eq!(series.counts, vec![2, 1]);
        assert!((series.accuracy[0] - 0.5).abs() < 1e-12);
        assert!((series.dmr[0] - 0.5).abs() < 1e-12);
        assert_eq!(series.accuracy[1], 1.0);
        assert_eq!(series.dmr[1], 0.0);
        assert!((series.mean_latency[1] - 0.04).abs() < 1e-9);
    }

    #[test]
    fn empty_segments_are_zero() {
        let series = SegmentSeries::compute(&[], 4, |_| 0);
        assert_eq!(series.counts, vec![0; 4]);
        assert_eq!(series.accuracy, vec![0.0; 4]);
    }
}
