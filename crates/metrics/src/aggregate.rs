//! Multi-seed aggregation: mean ± deviation summaries for repeated runs.

use schemble_tensor::stats::{mean, std_dev};

/// Mean ± spread of one metric across repeated (re-seeded) runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedStats {
    /// Mean across seeds.
    pub mean: f64,
    /// Population standard deviation across seeds.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl SeedStats {
    /// Aggregates metric values from repeated runs.
    ///
    /// # Panics
    /// Panics on an empty slice — aggregating zero runs is a driver bug.
    pub fn from_runs(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "no runs to aggregate");
        Self {
            mean: mean(values),
            std: std_dev(values),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            runs: values.len(),
        }
    }

    /// `"mean ± std"` with percent scaling, for result tables.
    pub fn pct(&self) -> String {
        format!("{:.1} ± {:.1}", 100.0 * self.mean, 100.0 * self.std)
    }

    /// True when another run set is clearly better (its worst run beats this
    /// one's best run) — the strongest seed-robust ordering claim.
    pub fn clearly_below(&self, other: &SeedStats) -> bool {
        self.max < other.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_basics() {
        let s = SeedStats::from_runs(&[0.9, 0.92, 0.94]);
        assert!((s.mean - 0.92).abs() < 1e-12);
        assert_eq!(s.min, 0.9);
        assert_eq!(s.max, 0.94);
        assert_eq!(s.runs, 3);
        assert!(s.std > 0.0);
    }

    #[test]
    fn pct_formats() {
        let s = SeedStats::from_runs(&[0.5, 0.5]);
        assert_eq!(s.pct(), "50.0 ± 0.0");
    }

    #[test]
    fn clear_ordering() {
        let low = SeedStats::from_runs(&[0.5, 0.6]);
        let high = SeedStats::from_runs(&[0.7, 0.8]);
        assert!(low.clearly_below(&high));
        assert!(!high.clearly_below(&low));
        let overlap = SeedStats::from_runs(&[0.55, 0.75]);
        assert!(!low.clearly_below(&overlap));
    }

    #[test]
    #[should_panic(expected = "no runs")]
    fn empty_runs_panic() {
        SeedStats::from_runs(&[]);
    }
}
