//! Offline budgeted selection — `Schemble*` (Fig. 16).
//!
//! Prior ensemble-selection work controls *cumulative runtime on offline
//! datasets* rather than online latency. To compare in their setting, the
//! scheduling problem is replaced by: choose a model set per sample so that
//! total utility is maximised subject to a budget on the summed (cumulative)
//! execution time. With per-sample utilities that are concave in cost this is
//! a separable knapsack, solved here by global greedy density upgrades
//! (the paper solves the LP directly; greedy on the per-sample efficient
//! frontiers attains the same solution up to one fractional item).

use crate::profiling::AccuracyProfile;
use rand::seq::IndexedRandom;
use rand::Rng;
use schemble_models::{Ensemble, ModelSet};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a budgeted selection.
#[derive(Debug, Clone)]
pub struct OfflineSelection {
    /// Chosen set per sample.
    pub sets: Vec<ModelSet>,
    /// Total cumulative runtime in milliseconds.
    pub total_cost_ms: f64,
    /// Total profiled utility.
    pub expected_utility: f64,
}

/// Per-set cumulative runtime (ms) of every subset of `ensemble`.
pub fn set_costs_ms(ensemble: &Ensemble) -> Vec<f64> {
    let m = ensemble.m();
    (0..(1u32 << m))
        .map(|mask| ensemble.set_cumulative_latency(ModelSet(mask)).as_millis_f64())
        .collect()
}

#[derive(Debug, PartialEq)]
struct Upgrade {
    density: f64,
    sample: usize,
    target: ModelSet,
}

impl Eq for Upgrade {}
impl Ord for Upgrade {
    fn cmp(&self, other: &Self) -> Ordering {
        self.density
            .partial_cmp(&other.density)
            .expect("NaN density")
            .then_with(|| self.sample.cmp(&other.sample))
    }
}
impl PartialOrd for Upgrade {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Maximises Σ utility subject to Σ cost ≤ `budget_ms`.
///
/// `utilities[i][set]` is sample *i*'s utility for each subset mask. Every
/// sample gets at least the cheapest single model (the offline task processes
/// everything); upgrades are then applied in order of utility-per-millisecond
/// until the budget is exhausted.
pub fn budgeted_selection(
    utilities: &[Vec<f64>],
    set_costs: &[f64],
    budget_ms: f64,
) -> OfflineSelection {
    assert!(!utilities.is_empty(), "no samples to select for");
    let n_sets = set_costs.len();
    // Cheapest singleton as mandatory baseline.
    let cheapest = (0..n_sets)
        .filter(|&s| ModelSet(s as u32).len() == 1)
        .min_by(|&a, &b| set_costs[a].partial_cmp(&set_costs[b]).expect("finite cost"))
        .expect("at least one model");

    let mut sets = vec![ModelSet(cheapest as u32); utilities.len()];
    let mut total_cost: f64 = utilities.len() as f64 * set_costs[cheapest];

    let best_upgrade = |current: ModelSet, u_row: &[f64]| -> Option<Upgrade> {
        let cur_cost = set_costs[current.0 as usize];
        let cur_util = u_row[current.0 as usize];
        let mut best: Option<Upgrade> = None;
        for s in 1..n_sets {
            let cost = set_costs[s];
            let util = u_row[s];
            if cost <= cur_cost + 1e-12 || util <= cur_util + 1e-12 {
                continue;
            }
            let density = (util - cur_util) / (cost - cur_cost);
            if best.as_ref().is_none_or(|b| density > b.density) {
                best = Some(Upgrade { density, sample: 0, target: ModelSet(s as u32) });
            }
        }
        best
    };

    let mut heap: BinaryHeap<Upgrade> = BinaryHeap::new();
    for (i, u_row) in utilities.iter().enumerate() {
        if let Some(mut up) = best_upgrade(sets[i], u_row) {
            up.sample = i;
            heap.push(up);
        }
    }
    while let Some(up) = heap.pop() {
        let i = up.sample;
        // Stale entries (the sample has been upgraded since) are re-derived.
        let fresh = best_upgrade(sets[i], &utilities[i]);
        let Some(mut fresh) = fresh else { continue };
        fresh.sample = i;
        if (fresh.target, fresh.density.to_bits()) != (up.target, up.density.to_bits()) {
            heap.push(fresh);
            continue;
        }
        let delta = set_costs[up.target.0 as usize] - set_costs[sets[i].0 as usize];
        if total_cost + delta > budget_ms {
            continue; // cannot afford this one; cheaper upgrades may still fit.
        }
        total_cost += delta;
        sets[i] = up.target;
        if let Some(mut next) = best_upgrade(sets[i], &utilities[i]) {
            next.sample = i;
            heap.push(next);
        }
    }

    let expected_utility = sets.iter().zip(utilities).map(|(s, u)| u[s.0 as usize]).sum();
    OfflineSelection { sets, total_cost_ms: total_cost, expected_utility }
}

/// Utility rows for a batch of scores under a profile.
pub fn utility_rows(profile: &AccuracyProfile, scores: &[f64]) -> Vec<Vec<f64>> {
    scores.iter().map(|&s| profile.utility_vector(s)).collect()
}

/// The Random baseline: uniformly random non-empty sets, re-drawn until the
/// budget constraint holds in expectation (sets are downgraded to the
/// cheapest singleton while over budget).
pub fn random_selection(
    m: usize,
    n: usize,
    set_costs: &[f64],
    budget_ms: f64,
    rng: &mut impl Rng,
) -> Vec<ModelSet> {
    let all: Vec<ModelSet> = ModelSet::all_nonempty(m).collect();
    let cheapest = *all
        .iter()
        .filter(|s| s.len() == 1)
        .min_by(|a, b| {
            set_costs[a.0 as usize].partial_cmp(&set_costs[b.0 as usize]).expect("finite")
        })
        .expect("non-empty ensemble");
    let mut sets: Vec<ModelSet> = (0..n).map(|_| *all.choose(rng).expect("non-empty")).collect();
    let mut cost: f64 = sets.iter().map(|s| set_costs[s.0 as usize]).sum();
    let mut idx = 0usize;
    while cost > budget_ms && idx < n {
        cost -= set_costs[sets[idx].0 as usize] - set_costs[cheapest.0 as usize];
        sets[idx] = cheapest;
        idx += 1;
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::SchembleArtifacts;
    use schemble_data::TaskKind;
    use schemble_sim::rng::stream_rng;

    fn fixture() -> (Ensemble, AccuracyProfile, Vec<f64>, Vec<schemble_models::Sample>) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let art = SchembleArtifacts::build_small(&ens, &gen, 3);
        let samples = gen.batch(0, 400);
        let scores = art.scorer.score_batch(&ens, &samples);
        (ens, art.profile, scores, samples)
    }

    #[test]
    fn selection_respects_budget() {
        let (ens, profile, scores, _) = fixture();
        let costs = set_costs_ms(&ens);
        let rows = utility_rows(&profile, &scores);
        for budget_per_sample in [25.0, 60.0, 120.0] {
            let budget = budget_per_sample * rows.len() as f64;
            let sel = budgeted_selection(&rows, &costs, budget);
            // Mandatory singleton may exceed a sub-minimal budget; otherwise
            // the constraint must hold.
            let min_cost = rows.len() as f64 * 18.0;
            assert!(
                sel.total_cost_ms <= budget.max(min_cost) + 1e-6,
                "budget {budget} exceeded: {}",
                sel.total_cost_ms
            );
            assert!(sel.sets.iter().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn utility_grows_with_budget() {
        let (ens, profile, scores, _) = fixture();
        let costs = set_costs_ms(&ens);
        let rows = utility_rows(&profile, &scores);
        let n = rows.len() as f64;
        let tight = budgeted_selection(&rows, &costs, 25.0 * n);
        let loose = budgeted_selection(&rows, &costs, 120.0 * n);
        assert!(
            loose.expected_utility > tight.expected_utility,
            "more budget must not reduce utility"
        );
        // Unlimited budget ⇒ every sample attains its maximum utility (ties
        // between a subset and the full set stop upgrades early, so the sets
        // themselves need not all be the full ensemble).
        let unlimited = budgeted_selection(&rows, &costs, 1e12);
        let max_total: f64 = rows.iter().map(|r| r.iter().cloned().fold(0.0, f64::max)).sum();
        assert!(
            (unlimited.expected_utility - max_total).abs() < 1e-9,
            "unlimited budget should reach max utility: {} vs {}",
            unlimited.expected_utility,
            max_total
        );
    }

    #[test]
    fn difficulty_aware_selection_beats_random_at_same_budget() {
        let (ens, profile, scores, samples) = fixture();
        let costs = set_costs_ms(&ens);
        let rows = utility_rows(&profile, &scores);
        let n = rows.len() as f64;
        let budget = 60.0 * n;
        let smart = budgeted_selection(&rows, &costs, budget);
        let mut rng = stream_rng(1, "random-sel");
        let random = random_selection(ens.m(), rows.len(), &costs, budget, &mut rng);

        let accuracy = |sets: &[ModelSet]| {
            let mut hits = 0.0;
            for (s, set) in samples.iter().zip(sets) {
                let reference = ens.ensemble_output(s);
                if ens.subset_output(s, *set).agrees_with(&reference, &ens.spec) {
                    hits += 1.0;
                }
            }
            hits / samples.len() as f64
        };
        let acc_smart = accuracy(&smart.sets);
        let acc_random = accuracy(&random);
        assert!(
            acc_smart > acc_random,
            "Schemble* {acc_smart:.3} must beat Random {acc_random:.3}"
        );
    }

    #[test]
    fn hard_samples_get_more_models() {
        let (_, profile, scores, _) = fixture();
        let ens = TaskKind::TextMatching.ensemble(1);
        let costs = set_costs_ms(&ens);
        let rows = utility_rows(&profile, &scores);
        let budget = 55.0 * rows.len() as f64;
        let sel = budgeted_selection(&rows, &costs, budget);
        // Correlation between score and models assigned should be positive.
        let sizes: Vec<f64> = sel.sets.iter().map(|s| s.len() as f64).collect();
        let corr = schemble_tensor::stats::pearson(&sizes, &scores);
        assert!(corr > 0.2, "harder samples should get more models, corr {corr:.3}");
    }
}
