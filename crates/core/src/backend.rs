//! Execution backends: where tasks actually run.
//!
//! The pipelines in [`crate::pipeline`] decide *what* to run (admission,
//! model-set selection, dispatch order); an [`ExecutionBackend`] decides
//! *how* running happens — inside the discrete-event simulator
//! ([`SimBackend`]) or on real worker threads (`schemble-serve`'s threaded
//! backend). Keeping the decision logic in [`crate::engine`] and the
//! execution substrate behind this trait is what lets the same pipeline run
//! unchanged in simulation and in the wall-clock serving runtime, and is
//! also what makes the serve runtime's virtual-clock parity mode possible:
//! the runtime drives the *identical* engine code over a [`SimBackend`], so
//! its admission decisions match the DES pipeline's by construction.
//!
//! Executors are indexed `0..executors()`. For the Schemble pipeline the
//! executor index *is* the base-model index (identity deployment); the
//! immediate-selection family maps instances to base models through its
//! `Deployment`.

use rand::rngs::StdRng;
use schemble_sim::rng::stream_rng;
use schemble_sim::{
    BatchConfig, EventQueue, FaultPlan, FaultState, FaultTransition, LatencyModel, ServerBank,
    SimDuration, SimTime, TaskFate, TaskId,
};
use schemble_trace::{TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::sync::Arc;

/// An event surfaced by a backend to the engine driving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendEvent {
    /// Query `workload.queries[i]` has arrived.
    Arrival(usize),
    /// `executor` finished its running task for `query`.
    TaskDone {
        /// Executor (server instance) index.
        executor: usize,
        /// Query id the finished task belonged to.
        query: u64,
    },
    /// `executor`'s task for `query` failed (transient fault, timeout kill,
    /// or executor crash) instead of completing.
    TaskFailed {
        /// Executor (server instance) index.
        executor: usize,
        /// Query id the failed task belonged to.
        query: u64,
    },
    /// `executor` went down (fault-plan crash window opened or its worker
    /// died). Any running task and backlog surface as separate
    /// [`BackendEvent::TaskFailed`] events.
    ExecutorDown {
        /// Executor index.
        executor: usize,
    },
    /// A down `executor` recovered and accepts work again.
    ExecutorUp {
        /// Executor index.
        executor: usize,
    },
    /// A requested wake-up fired (plan effective, predictor done, deadline).
    Wake,
}

/// Per-executor lifetime counters, for usage reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorUsage {
    /// Total busy time in seconds.
    pub busy_secs: f64,
    /// Tasks completed.
    pub tasks: u64,
}

/// An execution substrate for pipeline engines.
///
/// Contract shared by all implementations:
///
/// * **Non-preemptive.** A started task runs to completion; `start_task`
///   panics (or asserts) if the executor is busy.
/// * **Sampling at submission.** The task's (synthetic) execution time is
///   drawn from the executor's latency model when the task is submitted
///   (`start_task`/`enqueue_task`), in call order — this keeps runs
///   deterministic for a fixed seed regardless of substrate.
/// * **Completion surfaces as an event.** The backend delivers
///   [`BackendEvent::TaskDone`] through its own event channel; engines
///   never poll.
pub trait ExecutionBackend {
    /// Number of executors (server instances).
    fn executors(&self) -> usize;

    /// True when `executor` has no running task (a down executor is never
    /// idle — it cannot accept work).
    fn is_idle(&self, executor: usize) -> bool;

    /// True when `executor` is up (not inside a fault-plan crash window and
    /// its worker alive). Backends without fault support are always up.
    fn is_up(&self, _executor: usize) -> bool {
        true
    }

    /// Indices of currently idle executors, ascending.
    fn idle_executors(&self) -> Vec<usize>;

    /// True when any executor is idle.
    fn any_idle(&self) -> bool {
        !self.idle_executors().is_empty()
    }

    /// Earliest time `executor` could start a new task, counting its
    /// backlog at planned (nominal) durations.
    fn available_at(&self, executor: usize, now: SimTime) -> SimTime;

    /// [`Self::available_at`] for every executor, written into `out`
    /// (cleared first). The scratch-reuse twin of [`Self::availability`]:
    /// callers that plan repeatedly hold one buffer and refill it, so
    /// steady-state planning allocates nothing even when batching multiplies
    /// the number of availability queries per plan.
    fn availability_into(&self, now: SimTime, out: &mut Vec<SimTime>) {
        out.clear();
        for k in 0..self.executors() {
            out.push(self.available_at(k, now));
        }
    }

    /// [`Self::available_at`] for every executor (allocating convenience
    /// wrapper over [`Self::availability_into`]).
    fn availability(&self, now: SimTime) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(self.executors());
        self.availability_into(now, &mut out);
        out
    }

    /// Starts `query` on an idle `executor` immediately (dispatch-on-idle
    /// pipelines). Panics if the executor is busy.
    fn start_task(&mut self, executor: usize, query: u64, now: SimTime);

    /// Appends `query` to `executor`'s FIFO backlog (immediate-selection
    /// pipelines); the executor starts it as soon as it idles.
    fn enqueue_task(&mut self, executor: usize, query: u64, now: SimTime);

    /// Cancels `executor`'s *running* task for `query` (anytime early exit):
    /// the task stops occupying the executor now, its completion never
    /// surfaces, and the time spent so far is charged as busy time — exactly
    /// the accounting a crash kill performs, minus the failure. On a
    /// batching backend, a member of a not-yet-launched open batch is simply
    /// removed (nothing ran, nothing is charged) and the call succeeds; a
    /// member of an already-launched batch is refused — the whole batch
    /// shares one forward pass and cannot shed one member mid-flight.
    /// Returns whether a matching task was cancelled; `false` means the
    /// executor is running something else (or nothing), e.g. because a crash
    /// already killed the task, and the caller must leave its bookkeeping to
    /// the failure path. Backends without cancellation support always refuse.
    fn cancel_task(&mut self, _executor: usize, _query: u64, _now: SimTime) -> bool {
        false
    }

    /// Adds `query`'s task to `executor`'s open batch, opening one if none
    /// is pending (cross-query batched execution). The batch launches when
    /// it reaches the backend's configured `batch_max` — or when its
    /// batching window expires, whichever is first — and every member then
    /// executes in one pass whose duration follows the backend's
    /// [`schemble_sim::BatchCurve`]. Like `start_task`, the member's
    /// synthetic duration and fault fate are drawn at submission, in call
    /// order. On a backend without batching (or with it inactive) this *is*
    /// [`Self::start_task`]: a batch of one, launched immediately.
    fn submit_batch(&mut self, executor: usize, query: u64, now: SimTime) {
        self.start_task(executor, query, now);
    }

    /// Number of tasks in `executor`'s open (not yet launched) batch; `0`
    /// without batching.
    fn open_batch_len(&self, _executor: usize) -> usize {
        0
    }

    /// Asks the backend to surface [`BackendEvent::Wake`] at `at`.
    fn request_wake(&mut self, at: SimTime);

    /// Lifetime busy-time/task counters per executor.
    fn usage(&self) -> Vec<ExecutorUsage>;
}

/// An open (still accepting) batch on one executor: members with their
/// pre-drawn durations and fault fates, waiting for the batch to fill or
/// its window to expire.
struct OpenBatch {
    /// `(query, sampled duration, doomed)`, in submission order.
    members: Vec<(u64, SimDuration, bool)>,
    opened_at: SimTime,
}

/// A launched batch occupying one executor until `completes_at`.
struct RunningBatch {
    /// Members whose completion/failure events are still queued.
    members: Vec<u64>,
    completes_at: SimTime,
    /// Batched service time, charged to busy accounting once at retirement.
    duration: SimDuration,
}

/// The discrete-event-simulation backend: a [`ServerBank`] plus an
/// [`EventQueue`], with synthetic latencies drawn from a named RNG stream.
///
/// [`SimBackend::pop_event`] is the simulation loop's clock: it advances
/// virtual time to the next event and performs the executor-side mechanics
/// of completions (retiring the finished task and starting the next backlog
/// task) before handing the event to the engine.
pub struct SimBackend {
    servers: ServerBank,
    events: EventQueue<BackendEvent>,
    latencies: Vec<LatencyModel>,
    rng: StdRng,
    trace: Arc<TraceSink>,
    /// Fault-plan interpreter; `None` keeps the backend byte-identical to
    /// the pre-fault behaviour (no fault RNG draws, no extra events).
    faults: Option<FaultState>,
    /// Up/down transitions from the plan (sorted), for recovery-time lookups.
    transitions: Vec<FaultTransition>,
    /// Per-executor timeout derived from the plan's latency quantile.
    timeouts: Vec<Option<SimDuration>>,
    /// Whether each executor is currently inside a crash window.
    down: Vec<bool>,
    /// Failure flag per *backlogged* task, parallel to each server's FIFO
    /// backlog (fates are decided at submission, consumed at start).
    pending_fate: Vec<VecDeque<bool>>,
    /// Stale completion/failure events of crash-killed tasks, keyed by
    /// `(executor, query, scheduled_time)`; swallowed when they pop.
    suppressed: Vec<(usize, u64, SimTime)>,
    /// Cross-query batching; `None` (or an inactive config) keeps the
    /// backend byte-identical to an unbatched build.
    batching: Option<BatchConfig>,
    /// Open batch per executor (batched execution runs beside the
    /// [`ServerBank`], which only ever sees unbatched tasks).
    open_batches: Vec<Option<OpenBatch>>,
    /// Launched batch per executor.
    running_batches: Vec<Option<RunningBatch>>,
    /// Monotonic batch-id source for [`TraceEvent::BatchFormed`].
    batch_seq: u64,
    /// Busy time accrued by batched passes, per executor.
    batch_busy: Vec<SimDuration>,
    /// Tasks completed through batched passes, per executor.
    batch_tasks: Vec<u64>,
    /// Total tasks launched as batch members (counters backfill).
    tasks_batched: u64,
    /// Size of every launched batch in launch order (histogram backfill).
    batch_sizes: Vec<u32>,
}

impl SimBackend {
    /// A backend with one executor per entry of `latencies`, drawing
    /// execution times from the `(seed, stream)` RNG stream.
    pub fn new(latencies: Vec<LatencyModel>, seed: u64, stream: &str) -> Self {
        let n = latencies.len();
        Self {
            servers: ServerBank::new(n),
            events: EventQueue::new(),
            latencies,
            rng: stream_rng(seed, stream),
            trace: TraceSink::disabled(),
            faults: None,
            transitions: Vec::new(),
            timeouts: vec![None; n],
            down: vec![false; n],
            pending_fate: (0..n).map(|_| VecDeque::new()).collect(),
            suppressed: Vec::new(),
            batching: None,
            open_batches: (0..n).map(|_| None).collect(),
            running_batches: (0..n).map(|_| None).collect(),
            batch_seq: 0,
            batch_busy: vec![SimDuration::ZERO; n],
            batch_tasks: vec![0; n],
            tasks_batched: 0,
            batch_sizes: Vec::new(),
        }
    }

    /// Emits task lifecycle events into `trace` (virtual timestamps).
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// Enables cross-query batching. An inactive config (`batch_max <= 1`)
    /// is ignored entirely, keeping the backend byte-identical to an
    /// unbatched build — the off switch `--batch-max 1` relies on.
    pub fn with_batching(mut self, config: BatchConfig) -> Self {
        if config.active() {
            self.batching = Some(config);
        }
        self
    }

    /// Total tasks launched as batch members so far (feeds the
    /// `tasks_batched_total` counter in virtual-clock runs).
    pub fn tasks_batched(&self) -> u64 {
        self.tasks_batched
    }

    /// Sizes of every batch launched so far, in launch order (feeds the
    /// `batch_size` histogram in virtual-clock runs).
    pub fn batch_sizes(&self) -> &[u32] {
        &self.batch_sizes
    }

    /// Arms the backend with a fault plan, seeding the dedicated `"faults"`
    /// RNG stream from `seed`. The plan's up/down transitions are pushed
    /// into the event queue *now*, before any arrival, so every backend
    /// constructed this way observes them in the same total order.
    pub fn with_faults(mut self, plan: FaultPlan, seed: u64) -> Self {
        if plan.is_noop() {
            return self;
        }
        let transitions = plan.transitions();
        let state = FaultState::new(plan, seed);
        self.timeouts = self.latencies.iter().map(|l| state.timeout_for(l)).collect();
        for tr in &transitions {
            if tr.executor >= self.latencies.len() {
                continue;
            }
            let ev = if tr.up {
                BackendEvent::ExecutorUp { executor: tr.executor }
            } else {
                BackendEvent::ExecutorDown { executor: tr.executor }
            };
            self.events.push(tr.at, ev);
        }
        self.transitions = transitions;
        self.faults = Some(state);
        self
    }

    /// Schedules `Arrival(index)` at `at`.
    pub fn push_arrival(&mut self, at: SimTime, index: usize) {
        self.events.push(at, BackendEvent::Arrival(index));
    }

    /// The virtual time of the next event this backend would surface,
    /// without advancing: the earlier of the event queue's head and any
    /// due batch launch. Drivers that pause at fixed virtual-time
    /// boundaries (the steal-epoch rendezvous) use this to process every
    /// event strictly *before* a boundary first, so DES and virtual-clock
    /// serving cut their epochs at identical instants.
    pub fn peek_time(&self) -> Option<SimTime> {
        let head = self.events.peek_time();
        match self.next_due_launch() {
            Some((due, _)) => Some(head.map_or(due, |t| t.min(due))),
            None => head,
        }
    }

    /// Advances to and returns the next event, or `None` once drained.
    ///
    /// Completions are applied to the server bank here (including starting
    /// the executor's next backlog task), so by the time the engine sees
    /// [`BackendEvent::TaskDone`] the executor is already idle or re-busy.
    /// Failures are applied the same way; crash transitions kill the running
    /// task and drop the backlog, surfacing one [`BackendEvent::TaskFailed`]
    /// per affected task at the crash instant.
    pub fn pop_event(&mut self) -> Option<(SimTime, BackendEvent)> {
        loop {
            // A full batch launches synchronously in `submit_batch`; an
            // unfilled one launches when its window expires. Launching due
            // batches *before* popping any event at or past their deadline
            // means virtual time never slides past a pending launch.
            if let Some((due, k)) = self.next_due_launch() {
                if self.events.peek_time().is_none_or(|t| due <= t) {
                    self.launch_batch(k, due);
                    continue;
                }
            }
            let (now, event) = self.events.pop()?;
            match event {
                BackendEvent::TaskDone { executor, query } => {
                    if self.take_suppressed(executor, query, now) {
                        continue;
                    }
                    if self.is_batch_member(executor, query) {
                        self.retire_batch_member(executor, query, now, false);
                    } else {
                        self.servers.get_mut(executor).complete(TaskId(query), now);
                        self.trace.emit(TraceEvent::TaskDone {
                            t: now,
                            query,
                            executor: executor as u16,
                        });
                        self.start_next_from_backlog(executor, now);
                    }
                }
                BackendEvent::TaskFailed { executor, query } => {
                    if self.take_suppressed(executor, query, now) {
                        continue;
                    }
                    if self.is_batch_member(executor, query) {
                        self.retire_batch_member(executor, query, now, true);
                        return Some((now, event));
                    }
                    // Scheduled failures (transient/timeout) still occupy the
                    // server; crash notifications pushed by `ExecutorDown`
                    // already released it and pass through untouched.
                    let occupies =
                        self.servers.get(executor).running().is_some_and(|r| r.task.0 == query);
                    if occupies {
                        self.servers.get_mut(executor).fail(TaskId(query), now);
                        self.trace.emit(TraceEvent::TaskFailed {
                            t: now,
                            query,
                            executor: executor as u16,
                        });
                        self.start_next_from_backlog(executor, now);
                    }
                }
                BackendEvent::ExecutorDown { executor } => {
                    self.down[executor] = true;
                    self.trace.emit(TraceEvent::ExecutorDown { t: now, executor: executor as u16 });
                    if let Some(run) = self.servers.get(executor).running() {
                        // Its completion/failure event is still queued;
                        // remember to swallow it when it pops.
                        self.suppressed.push((executor, run.task.0, run.completes_at));
                    }
                    let mut casualties = Vec::new();
                    let server = self.servers.get_mut(executor);
                    casualties.extend(server.kill(now));
                    casualties.extend(server.drain_backlog());
                    self.pending_fate[executor].clear();
                    // An open batch's members die like backlog casualties
                    // (nothing ran); a launched batch is killed mid-pass:
                    // partial batch time is charged and the members' queued
                    // completions are swallowed when they pop.
                    if let Some(open) = self.open_batches[executor].take() {
                        casualties.extend(open.members.iter().map(|&(q, _, _)| TaskId(q)));
                    }
                    if let Some(run) = self.running_batches[executor].take() {
                        let left = run.completes_at.saturating_since(now);
                        let spent = SimDuration::from_micros(
                            run.duration.as_micros().saturating_sub(left.as_micros()),
                        );
                        self.batch_busy[executor] = self.batch_busy[executor] + spent;
                        for &query in &run.members {
                            self.suppressed.push((executor, query, run.completes_at));
                        }
                        casualties.extend(run.members.into_iter().map(TaskId));
                    }
                    for task in casualties {
                        self.trace.emit(TraceEvent::TaskFailed {
                            t: now,
                            query: task.0,
                            executor: executor as u16,
                        });
                        self.events.push(now, BackendEvent::TaskFailed { executor, query: task.0 });
                    }
                }
                BackendEvent::ExecutorUp { executor } => {
                    self.down[executor] = false;
                    self.trace.emit(TraceEvent::ExecutorUp { t: now, executor: executor as u16 });
                }
                BackendEvent::Arrival(_) | BackendEvent::Wake => {}
            }
            return Some((now, event));
        }
    }

    fn take_suppressed(&mut self, executor: usize, query: u64, at: SimTime) -> bool {
        match self.suppressed.iter().position(|&(e, q, t)| e == executor && q == query && t == at) {
            Some(i) => {
                self.suppressed.remove(i);
                true
            }
            None => false,
        }
    }

    fn fate_for(&mut self, executor: usize, now: SimTime, sampled: SimDuration) -> TaskFate {
        match self.faults.as_mut() {
            Some(f) => f.task_fate(executor, now, sampled, self.timeouts[executor]),
            None => TaskFate { duration: sampled, failed: false },
        }
    }

    fn start_next_from_backlog(&mut self, executor: usize, now: SimTime) {
        if self.down[executor] {
            return;
        }
        if let Some(run) = self.servers.get_mut(executor).start_next(now) {
            let failed = self.pending_fate[executor].pop_front().unwrap_or(false);
            let ev = if failed {
                BackendEvent::TaskFailed { executor, query: run.task.0 }
            } else {
                BackendEvent::TaskDone { executor, query: run.task.0 }
            };
            self.events.push(run.completes_at, ev);
            self.trace.emit(TraceEvent::TaskStart {
                t: now,
                query: run.task.0,
                executor: executor as u16,
            });
        }
    }

    /// Earliest open-batch launch deadline `(at, executor)`, if any.
    /// Executor order breaks ties, deterministically.
    fn next_due_launch(&self) -> Option<(SimTime, usize)> {
        let window = self.batching.as_ref()?.window;
        let mut due: Option<(SimTime, usize)> = None;
        for (k, slot) in self.open_batches.iter().enumerate() {
            if let Some(open) = slot {
                let at = open.opened_at + window;
                if due.is_none_or(|(t, _)| at < t) {
                    due = Some((at, k));
                }
            }
        }
        due
    }

    /// Launches `executor`'s open batch at `at`: one batched pass covering
    /// every member, with the service time of the longest member scaled by
    /// the batch curve. Members' completion/failure events all land at the
    /// batched finish instant.
    fn launch_batch(&mut self, executor: usize, at: SimTime) {
        let Some(open) = self.open_batches[executor].take() else { return };
        let cfg = self.batching.expect("batching configured");
        let size = open.members.len();
        let longest = open.members.iter().map(|&(_, d, _)| d).max().expect("non-empty batch");
        let duration = cfg.curve.scale(longest, size);
        let completes_at = at + duration;
        let batch = self.batch_seq;
        self.batch_seq += 1;
        self.tasks_batched += size as u64;
        self.batch_sizes.push(size as u32);
        let mut members = Vec::with_capacity(size);
        for &(query, _, doomed) in &open.members {
            self.trace.emit(TraceEvent::TaskStart { t: at, query, executor: executor as u16 });
            let ev = if doomed {
                BackendEvent::TaskFailed { executor, query }
            } else {
                BackendEvent::TaskDone { executor, query }
            };
            self.events.push(completes_at, ev);
            members.push(query);
        }
        self.trace.emit(TraceEvent::BatchFormed {
            t: at,
            executor: executor as u16,
            batch,
            size: size as u32,
        });
        self.running_batches[executor] = Some(RunningBatch { members, completes_at, duration });
    }

    /// Whether `query` is an in-flight member of `executor`'s launched batch.
    fn is_batch_member(&self, executor: usize, query: u64) -> bool {
        self.running_batches[executor].as_ref().is_some_and(|r| r.members.contains(&query))
    }

    /// Retires one member of `executor`'s launched batch; the last member
    /// out releases the executor and charges the batched pass's busy time.
    fn retire_batch_member(&mut self, executor: usize, query: u64, now: SimTime, failed: bool) {
        let run = self.running_batches[executor].as_mut().expect("member checked");
        let i = run.members.iter().position(|&q| q == query).expect("member checked");
        run.members.swap_remove(i);
        let done = run.members.is_empty();
        let ev = if failed {
            TraceEvent::TaskFailed { t: now, query, executor: executor as u16 }
        } else {
            self.batch_tasks[executor] += 1;
            TraceEvent::TaskDone { t: now, query, executor: executor as u16 }
        };
        self.trace.emit(ev);
        if done {
            let duration = run.duration;
            self.batch_busy[executor] = self.batch_busy[executor] + duration;
            self.running_batches[executor] = None;
        }
    }

    /// First recovery instant after `now` for a down executor.
    fn recovery_time(&self, executor: usize, now: SimTime) -> SimTime {
        self.transitions
            .iter()
            .find(|t| t.executor == executor && t.up && t.at > now)
            .map_or(now, |t| t.at)
    }
}

impl ExecutionBackend for SimBackend {
    fn executors(&self) -> usize {
        self.latencies.len()
    }

    fn is_idle(&self, executor: usize) -> bool {
        // An *open* batch leaves the executor idle — it is still accepting
        // members; only a launched batch occupies it.
        !self.down[executor]
            && self.servers.get(executor).is_idle()
            && self.running_batches[executor].is_none()
    }

    fn is_up(&self, executor: usize) -> bool {
        !self.down[executor]
    }

    fn idle_executors(&self) -> Vec<usize> {
        (0..self.executors()).filter(|&k| self.is_idle(k)).collect()
    }

    fn any_idle(&self) -> bool {
        (0..self.executors()).any(|k| self.is_idle(k))
    }

    fn available_at(&self, executor: usize, now: SimTime) -> SimTime {
        let mut base = self.servers.get(executor).available_at(now);
        if let Some(run) = &self.running_batches[executor] {
            base = base.max(run.completes_at);
        }
        if let (Some(cfg), Some(open)) = (&self.batching, &self.open_batches[executor]) {
            // Quote the *marginal* cost of joining the open batch: it
            // launches at `opened_at + window` at the latest and would then
            // run one pass of `s + 1` members, so the instant that makes
            // `available_at + planned` equal the predicted joined finish is
            // `launch + (gamma(s + 1) - 1) · planned`. The DP thereby prices
            // joining an open batch against opening a fresh one elsewhere.
            let planned = self.latencies[executor].planned();
            let gamma = cfg.curve.gamma(open.members.len() + 1);
            let marginal = SimDuration::from_micros(
                (planned.as_micros() as f64 * (gamma - 1.0)).round() as u64,
            );
            base = base.max(open.opened_at + cfg.window + marginal);
        }
        if self.down[executor] {
            base.max(self.recovery_time(executor, now))
        } else {
            base
        }
    }

    fn start_task(&mut self, executor: usize, query: u64, now: SimTime) {
        assert!(!self.down[executor], "start_task on a down executor");
        debug_assert!(
            self.open_batches[executor].is_none() && self.running_batches[executor].is_none(),
            "start_task alongside a batch on executor {executor}"
        );
        let sampled = self.latencies[executor].sample(&mut self.rng);
        let fate = self.fate_for(executor, now, sampled);
        let run =
            self.servers.get_mut(executor).start_immediately(TaskId(query), now, fate.duration);
        let ev = if fate.failed {
            BackendEvent::TaskFailed { executor, query }
        } else {
            BackendEvent::TaskDone { executor, query }
        };
        self.events.push(run.completes_at, ev);
        self.trace.emit(TraceEvent::TaskStart { t: now, query, executor: executor as u16 });
    }

    fn enqueue_task(&mut self, executor: usize, query: u64, now: SimTime) {
        debug_assert!(!self.down[executor], "enqueue onto a down executor");
        let sampled = self.latencies[executor].sample(&mut self.rng);
        let fate = self.fate_for(executor, now, sampled);
        let server = self.servers.get_mut(executor);
        let was_idle = server.is_idle();
        server.enqueue(TaskId(query), fate.duration);
        self.pending_fate[executor].push_back(fate.failed);
        if was_idle {
            self.start_next_from_backlog(executor, now);
        } else {
            self.trace.emit(TraceEvent::TaskEnqueue { t: now, query, executor: executor as u16 });
        }
    }

    fn cancel_task(&mut self, executor: usize, query: u64, now: SimTime) -> bool {
        // A member of a not-yet-launched open batch never ran: remove it
        // outright, no busy time, no stale events.
        if let Some(open) = self.open_batches[executor].as_mut() {
            if let Some(i) = open.members.iter().position(|&(q, _, _)| q == query) {
                open.members.remove(i);
                if open.members.is_empty() {
                    self.open_batches[executor] = None;
                }
                return true;
            }
        }
        // A launched batch shares one pass; a single member cannot be shed
        // mid-flight. Refuse — the caller keeps it and its completion lands
        // normally.
        if self.is_batch_member(executor, query) {
            return false;
        }
        let Some((task, completes_at)) =
            self.servers.get(executor).running().map(|r| (r.task.0, r.completes_at))
        else {
            return false;
        };
        if task != query {
            return false;
        }
        // The task's completion (or scheduled failure) event is still
        // queued; swallow it when it pops — same mechanism as a crash kill.
        self.suppressed.push((executor, task, completes_at));
        // `kill` charges the partial busy time; unlike `ExecutorDown`, the
        // casualty is discarded (a quit is not a failure, so no `TaskFailed`
        // surfaces) and the backlog is left intact.
        let _ = self.servers.get_mut(executor).kill(now);
        self.start_next_from_backlog(executor, now);
        true
    }

    fn submit_batch(&mut self, executor: usize, query: u64, now: SimTime) {
        let Some(cfg) = self.batching else {
            self.start_task(executor, query, now);
            return;
        };
        assert!(!self.down[executor], "submit_batch on a down executor");
        debug_assert!(
            self.running_batches[executor].is_none() && self.servers.get(executor).is_idle(),
            "open batches only exist while executor {executor} is idle"
        );
        // Same draw discipline as `start_task`: duration then fate, in
        // submission order, so a fixed seed yields the same per-task numbers
        // whether or not tasks end up co-batched.
        let sampled = self.latencies[executor].sample(&mut self.rng);
        let fate = self.fate_for(executor, now, sampled);
        // `TaskEnqueue` marks the batch-queue wait; `TaskStart` lands at the
        // launch instant, so exporters see queue-wait vs service split.
        self.trace.emit(TraceEvent::TaskEnqueue { t: now, query, executor: executor as u16 });
        let batch = self.open_batches[executor]
            .get_or_insert_with(|| OpenBatch { members: Vec::new(), opened_at: now });
        batch.members.push((query, fate.duration, fate.failed));
        if batch.members.len() >= cfg.batch_max {
            self.launch_batch(executor, now);
        }
    }

    fn open_batch_len(&self, executor: usize) -> usize {
        self.open_batches[executor].as_ref().map_or(0, |b| b.members.len())
    }

    fn request_wake(&mut self, at: SimTime) {
        self.events.push(at, BackendEvent::Wake);
    }

    fn usage(&self) -> Vec<ExecutorUsage> {
        (0..self.latencies.len())
            .map(|k| ExecutorUsage {
                busy_secs: (self.servers.get(k).busy_time() + self.batch_busy[k]).as_secs_f64(),
                tasks: self.servers.get(k).completed_tasks() + self.batch_tasks[k],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_sim::SimDuration;

    fn lat(ms: f64) -> LatencyModel {
        LatencyModel::constant_millis(ms)
    }

    #[test]
    fn start_task_surfaces_completion() {
        let mut b = SimBackend::new(vec![lat(10.0), lat(20.0)], 1, "test");
        assert_eq!(b.executors(), 2);
        assert!(b.any_idle());
        b.start_task(0, 7, SimTime::ZERO);
        assert!(!b.is_idle(0));
        assert!(b.is_idle(1));
        let (t, ev) = b.pop_event().expect("completion queued");
        assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(ev, BackendEvent::TaskDone { executor: 0, query: 7 });
        assert!(b.is_idle(0));
        assert_eq!(b.usage()[0].tasks, 1);
    }

    #[test]
    fn enqueue_chains_backlog_tasks() {
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test");
        b.enqueue_task(0, 1, SimTime::ZERO);
        b.enqueue_task(0, 2, SimTime::ZERO);
        assert_eq!(b.available_at(0, SimTime::ZERO), SimTime::ZERO + SimDuration::from_millis(20));
        let (t1, e1) = b.pop_event().expect("first completion");
        assert_eq!(e1, BackendEvent::TaskDone { executor: 0, query: 1 });
        assert_eq!(t1, SimTime::ZERO + SimDuration::from_millis(10));
        // Backlog task auto-started at the completion instant.
        let (t2, e2) = b.pop_event().expect("second completion");
        assert_eq!(e2, BackendEvent::TaskDone { executor: 0, query: 2 });
        assert_eq!(t2, SimTime::ZERO + SimDuration::from_millis(20));
        assert!(b.pop_event().is_none());
    }

    #[test]
    fn crash_kills_running_task_and_drops_backlog() {
        let plan = FaultPlan::parse("crash 0 0.015 0.040").unwrap();
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test").with_faults(plan, 1);
        b.enqueue_task(0, 1, SimTime::ZERO); // runs 0..10ms... restarts as q2 at 10ms
        b.enqueue_task(0, 2, SimTime::ZERO); // running at crash time 15ms → killed
        b.enqueue_task(0, 3, SimTime::ZERO); // backlogged at crash → dropped
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::TaskDone { executor: 0, query: 1 });
        let (t, ev) = b.pop_event().unwrap();
        assert_eq!(ev, BackendEvent::ExecutorDown { executor: 0 });
        assert_eq!(t, SimTime::from_micros(15_000));
        assert!(!b.is_up(0));
        assert!(!b.is_idle(0), "down executor is not idle");
        // Killed running task and dropped backlog task surface as failures
        // at the crash instant; the stale completion of q2 is swallowed.
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::TaskFailed { executor: 0, query: 2 });
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::TaskFailed { executor: 0, query: 3 });
        // Down executor advertises its recovery time.
        assert_eq!(b.available_at(0, t), SimTime::from_micros(40_000));
        let (t_up, up) = b.pop_event().unwrap();
        assert_eq!(up, BackendEvent::ExecutorUp { executor: 0 });
        assert_eq!(t_up, SimTime::from_micros(40_000));
        assert!(b.is_up(0) && b.is_idle(0));
        assert!(b.pop_event().is_none(), "stale completion was suppressed");
        // Partial busy time of the killed task (10..15ms) is charged.
        assert!((b.usage()[0].busy_secs - 0.015).abs() < 1e-9);
        assert_eq!(b.usage()[0].tasks, 1, "killed tasks don't count as completed");
    }

    #[test]
    fn timeout_surfaces_task_failed_at_the_cap() {
        // 3x straggler pushes the 10ms task past the q=1.0 timeout (= 10ms
        // nominal with zero jitter), so it is killed at the cap.
        let plan = FaultPlan::parse("straggle 0 0 1 3.0\ntimeout-q 1.0").unwrap();
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test").with_faults(plan, 1);
        b.start_task(0, 9, SimTime::ZERO);
        let (t, ev) = b.pop_event().unwrap();
        assert_eq!(ev, BackendEvent::TaskFailed { executor: 0, query: 9 });
        assert_eq!(t, SimTime::from_micros(10_000), "killed at the timeout, not at 30ms");
        assert!(b.is_idle(0), "failed task releases the executor");
        assert_eq!(b.usage()[0].tasks, 0);
    }

    #[test]
    fn noop_fault_plan_changes_nothing() {
        let mut plain = SimBackend::new(vec![lat(10.0)], 7, "test");
        let mut armed =
            SimBackend::new(vec![lat(10.0)], 7, "test").with_faults(FaultPlan::default(), 7);
        for b in [&mut plain, &mut armed] {
            b.start_task(0, 1, SimTime::ZERO);
        }
        assert_eq!(plain.pop_event(), armed.pop_event());
    }

    #[test]
    fn batch_launches_when_window_expires() {
        let cfg = BatchConfig::new(4, SimDuration::from_millis(2));
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test").with_batching(cfg);
        b.submit_batch(0, 1, SimTime::ZERO);
        b.submit_batch(0, 2, SimTime::ZERO);
        assert_eq!(b.open_batch_len(0), 2);
        assert!(b.is_idle(0), "an open batch keeps the executor joinable");
        // Launched at the 2ms window expiry; gamma(2) = 1.15 scales the 10ms
        // pass to 11.5ms, so both members finish at 13.5ms.
        let (t1, e1) = b.pop_event().unwrap();
        assert_eq!(e1, BackendEvent::TaskDone { executor: 0, query: 1 });
        assert_eq!(t1, SimTime::from_micros(13_500));
        let (t2, e2) = b.pop_event().unwrap();
        assert_eq!(e2, BackendEvent::TaskDone { executor: 0, query: 2 });
        assert_eq!(t2, t1, "batch members finish together");
        assert!(b.pop_event().is_none());
        assert_eq!(b.tasks_batched(), 2);
        assert_eq!(b.usage()[0].tasks, 2);
        // One shared pass: 11.5ms of busy time, not 20ms.
        assert!((b.usage()[0].busy_secs - 0.0115).abs() < 1e-9);
    }

    #[test]
    fn full_batch_launches_immediately() {
        let cfg = BatchConfig::new(2, SimDuration::from_millis(2));
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test").with_batching(cfg);
        b.submit_batch(0, 1, SimTime::ZERO);
        assert_eq!(b.open_batch_len(0), 1);
        b.submit_batch(0, 2, SimTime::ZERO);
        assert_eq!(b.open_batch_len(0), 0, "reaching batch_max launches synchronously");
        assert!(!b.is_idle(0), "a launched batch occupies the executor");
        let (t, _) = b.pop_event().unwrap();
        assert_eq!(t, SimTime::from_micros(11_500), "no window wait when the batch fills");
    }

    #[test]
    fn cancel_removes_open_member_but_refuses_launched_member() {
        let cfg = BatchConfig::new(4, SimDuration::from_millis(2));
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test").with_batching(cfg);
        b.submit_batch(0, 1, SimTime::ZERO);
        b.submit_batch(0, 2, SimTime::ZERO);
        assert!(b.cancel_task(0, 1, SimTime::ZERO), "open members are removable");
        assert_eq!(b.open_batch_len(0), 1);
        // The survivor launches alone at the window and costs the plain 10ms.
        let (t, ev) = b.pop_event().unwrap();
        assert_eq!(ev, BackendEvent::TaskDone { executor: 0, query: 2 });
        assert_eq!(t, SimTime::from_micros(12_000));
        assert!(b.pop_event().is_none(), "cancelled member left no stale events");

        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test")
            .with_batching(BatchConfig::new(2, SimDuration::from_millis(2)));
        b.submit_batch(0, 1, SimTime::ZERO);
        b.submit_batch(0, 2, SimTime::ZERO); // fills → launches
        assert!(!b.cancel_task(0, 1, SimTime::ZERO), "launched members cannot be shed");
    }

    #[test]
    fn crash_kills_open_and_running_batches() {
        let plan = FaultPlan::parse("crash 0 0.015 0.040").unwrap();
        let cfg = BatchConfig::new(4, SimDuration::from_millis(2));
        let mut b =
            SimBackend::new(vec![lat(20.0)], 1, "test").with_faults(plan, 1).with_batching(cfg);
        b.submit_batch(0, 1, SimTime::ZERO);
        b.submit_batch(0, 2, SimTime::ZERO);
        // The pass launches at 2ms and would run 23ms (gamma(2)·20ms); the
        // crash at 15ms kills it mid-flight.
        let (t, ev) = b.pop_event().unwrap();
        assert_eq!(ev, BackendEvent::ExecutorDown { executor: 0 });
        assert_eq!(t, SimTime::from_micros(15_000));
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::TaskFailed { executor: 0, query: 1 });
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::TaskFailed { executor: 0, query: 2 });
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::ExecutorUp { executor: 0 });
        assert!(b.pop_event().is_none(), "stale batch completions were suppressed");
        // Partial pass time 2..15ms is charged; no member completed.
        assert!((b.usage()[0].busy_secs - 0.013).abs() < 1e-9);
        assert_eq!(b.usage()[0].tasks, 0);
    }

    #[test]
    fn open_batch_quotes_marginal_join_cost() {
        let cfg = BatchConfig::new(4, SimDuration::from_millis(2));
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test").with_batching(cfg);
        assert_eq!(b.available_at(0, SimTime::ZERO), SimTime::ZERO);
        b.submit_batch(0, 1, SimTime::ZERO);
        // Joining makes a batch of two: launch at 2ms, plus (gamma(2)−1) of
        // the 10ms planned latency = 1.5ms, so avail = 3.5ms and
        // avail + planned = 13.5ms — exactly the joined finish instant.
        assert_eq!(b.available_at(0, SimTime::ZERO), SimTime::from_micros(3_500));
    }

    #[test]
    fn inactive_batching_is_plain_start_task() {
        let cfg = BatchConfig::new(1, SimDuration::from_millis(2));
        let mut plain = SimBackend::new(vec![lat(10.0)], 7, "test");
        let mut off = SimBackend::new(vec![lat(10.0)], 7, "test").with_batching(cfg);
        plain.start_task(0, 1, SimTime::ZERO);
        off.submit_batch(0, 1, SimTime::ZERO);
        assert_eq!(plain.pop_event(), off.pop_event());
        assert_eq!(off.tasks_batched(), 0);
    }

    #[test]
    fn wakes_and_arrivals_interleave_in_time_order() {
        let mut b = SimBackend::new(vec![lat(1.0)], 1, "test");
        b.push_arrival(SimTime::ZERO + SimDuration::from_millis(5), 0);
        b.request_wake(SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::Wake);
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::Arrival(0));
    }
}
