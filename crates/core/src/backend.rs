//! Execution backends: where tasks actually run.
//!
//! The pipelines in [`crate::pipeline`] decide *what* to run (admission,
//! model-set selection, dispatch order); an [`ExecutionBackend`] decides
//! *how* running happens — inside the discrete-event simulator
//! ([`SimBackend`]) or on real worker threads (`schemble-serve`'s threaded
//! backend). Keeping the decision logic in [`crate::engine`] and the
//! execution substrate behind this trait is what lets the same pipeline run
//! unchanged in simulation and in the wall-clock serving runtime, and is
//! also what makes the serve runtime's virtual-clock parity mode possible:
//! the runtime drives the *identical* engine code over a [`SimBackend`], so
//! its admission decisions match the DES pipeline's by construction.
//!
//! Executors are indexed `0..executors()`. For the Schemble pipeline the
//! executor index *is* the base-model index (identity deployment); the
//! immediate-selection family maps instances to base models through its
//! `Deployment`.

use rand::rngs::StdRng;
use schemble_sim::rng::stream_rng;
use schemble_sim::{EventQueue, LatencyModel, ServerBank, SimTime, TaskId};
use schemble_trace::{TraceEvent, TraceSink};
use std::sync::Arc;

/// An event surfaced by a backend to the engine driving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendEvent {
    /// Query `workload.queries[i]` has arrived.
    Arrival(usize),
    /// `executor` finished its running task for `query`.
    TaskDone {
        /// Executor (server instance) index.
        executor: usize,
        /// Query id the finished task belonged to.
        query: u64,
    },
    /// A requested wake-up fired (plan effective, predictor done, deadline).
    Wake,
}

/// Per-executor lifetime counters, for usage reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorUsage {
    /// Total busy time in seconds.
    pub busy_secs: f64,
    /// Tasks completed.
    pub tasks: u64,
}

/// An execution substrate for pipeline engines.
///
/// Contract shared by all implementations:
///
/// * **Non-preemptive.** A started task runs to completion; `start_task`
///   panics (or asserts) if the executor is busy.
/// * **Sampling at submission.** The task's (synthetic) execution time is
///   drawn from the executor's latency model when the task is submitted
///   (`start_task`/`enqueue_task`), in call order — this keeps runs
///   deterministic for a fixed seed regardless of substrate.
/// * **Completion surfaces as an event.** The backend delivers
///   [`BackendEvent::TaskDone`] through its own event channel; engines
///   never poll.
pub trait ExecutionBackend {
    /// Number of executors (server instances).
    fn executors(&self) -> usize;

    /// True when `executor` has no running task.
    fn is_idle(&self, executor: usize) -> bool;

    /// Indices of currently idle executors, ascending.
    fn idle_executors(&self) -> Vec<usize>;

    /// True when any executor is idle.
    fn any_idle(&self) -> bool {
        !self.idle_executors().is_empty()
    }

    /// Earliest time `executor` could start a new task, counting its
    /// backlog at planned (nominal) durations.
    fn available_at(&self, executor: usize, now: SimTime) -> SimTime;

    /// [`Self::available_at`] for every executor.
    fn availability(&self, now: SimTime) -> Vec<SimTime> {
        (0..self.executors()).map(|k| self.available_at(k, now)).collect()
    }

    /// Starts `query` on an idle `executor` immediately (dispatch-on-idle
    /// pipelines). Panics if the executor is busy.
    fn start_task(&mut self, executor: usize, query: u64, now: SimTime);

    /// Appends `query` to `executor`'s FIFO backlog (immediate-selection
    /// pipelines); the executor starts it as soon as it idles.
    fn enqueue_task(&mut self, executor: usize, query: u64, now: SimTime);

    /// Asks the backend to surface [`BackendEvent::Wake`] at `at`.
    fn request_wake(&mut self, at: SimTime);

    /// Lifetime busy-time/task counters per executor.
    fn usage(&self) -> Vec<ExecutorUsage>;
}

/// The discrete-event-simulation backend: a [`ServerBank`] plus an
/// [`EventQueue`], with synthetic latencies drawn from a named RNG stream.
///
/// [`SimBackend::pop_event`] is the simulation loop's clock: it advances
/// virtual time to the next event and performs the executor-side mechanics
/// of completions (retiring the finished task and starting the next backlog
/// task) before handing the event to the engine.
pub struct SimBackend {
    servers: ServerBank,
    events: EventQueue<BackendEvent>,
    latencies: Vec<LatencyModel>,
    rng: StdRng,
    trace: Arc<TraceSink>,
}

impl SimBackend {
    /// A backend with one executor per entry of `latencies`, drawing
    /// execution times from the `(seed, stream)` RNG stream.
    pub fn new(latencies: Vec<LatencyModel>, seed: u64, stream: &str) -> Self {
        Self {
            servers: ServerBank::new(latencies.len()),
            events: EventQueue::new(),
            latencies,
            rng: stream_rng(seed, stream),
            trace: TraceSink::disabled(),
        }
    }

    /// Emits task lifecycle events into `trace` (virtual timestamps).
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// Schedules `Arrival(index)` at `at`.
    pub fn push_arrival(&mut self, at: SimTime, index: usize) {
        self.events.push(at, BackendEvent::Arrival(index));
    }

    /// Advances to and returns the next event, or `None` once drained.
    ///
    /// Completions are applied to the server bank here (including starting
    /// the executor's next backlog task), so by the time the engine sees
    /// [`BackendEvent::TaskDone`] the executor is already idle or re-busy.
    pub fn pop_event(&mut self) -> Option<(SimTime, BackendEvent)> {
        let (now, event) = self.events.pop()?;
        if let BackendEvent::TaskDone { executor, query } = event {
            self.servers.get_mut(executor).complete(TaskId(query), now);
            self.trace.emit(TraceEvent::TaskDone { t: now, query, executor: executor as u16 });
            if let Some(run) = self.servers.get_mut(executor).start_next(now) {
                self.events
                    .push(run.completes_at, BackendEvent::TaskDone { executor, query: run.task.0 });
                self.trace.emit(TraceEvent::TaskStart {
                    t: now,
                    query: run.task.0,
                    executor: executor as u16,
                });
            }
        }
        Some((now, event))
    }
}

impl ExecutionBackend for SimBackend {
    fn executors(&self) -> usize {
        self.latencies.len()
    }

    fn is_idle(&self, executor: usize) -> bool {
        self.servers.get(executor).is_idle()
    }

    fn idle_executors(&self) -> Vec<usize> {
        self.servers.idle_indices()
    }

    fn any_idle(&self) -> bool {
        self.servers.any_idle()
    }

    fn available_at(&self, executor: usize, now: SimTime) -> SimTime {
        self.servers.get(executor).available_at(now)
    }

    fn availability(&self, now: SimTime) -> Vec<SimTime> {
        self.servers.availability(now)
    }

    fn start_task(&mut self, executor: usize, query: u64, now: SimTime) {
        let dur = self.latencies[executor].sample(&mut self.rng);
        let run = self.servers.get_mut(executor).start_immediately(TaskId(query), now, dur);
        self.events.push(run.completes_at, BackendEvent::TaskDone { executor, query });
        self.trace.emit(TraceEvent::TaskStart { t: now, query, executor: executor as u16 });
    }

    fn enqueue_task(&mut self, executor: usize, query: u64, now: SimTime) {
        let dur = self.latencies[executor].sample(&mut self.rng);
        let server = self.servers.get_mut(executor);
        server.enqueue(TaskId(query), dur);
        if let Some(run) = server.start_next(now) {
            self.events
                .push(run.completes_at, BackendEvent::TaskDone { executor, query: run.task.0 });
            self.trace.emit(TraceEvent::TaskStart {
                t: now,
                query: run.task.0,
                executor: executor as u16,
            });
        } else {
            self.trace.emit(TraceEvent::TaskEnqueue { t: now, query, executor: executor as u16 });
        }
    }

    fn request_wake(&mut self, at: SimTime) {
        self.events.push(at, BackendEvent::Wake);
    }

    fn usage(&self) -> Vec<ExecutorUsage> {
        (0..self.latencies.len())
            .map(|k| ExecutorUsage {
                busy_secs: self.servers.get(k).busy_time().as_secs_f64(),
                tasks: self.servers.get(k).completed_tasks(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_sim::SimDuration;

    fn lat(ms: f64) -> LatencyModel {
        LatencyModel::constant_millis(ms)
    }

    #[test]
    fn start_task_surfaces_completion() {
        let mut b = SimBackend::new(vec![lat(10.0), lat(20.0)], 1, "test");
        assert_eq!(b.executors(), 2);
        assert!(b.any_idle());
        b.start_task(0, 7, SimTime::ZERO);
        assert!(!b.is_idle(0));
        assert!(b.is_idle(1));
        let (t, ev) = b.pop_event().expect("completion queued");
        assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(ev, BackendEvent::TaskDone { executor: 0, query: 7 });
        assert!(b.is_idle(0));
        assert_eq!(b.usage()[0].tasks, 1);
    }

    #[test]
    fn enqueue_chains_backlog_tasks() {
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test");
        b.enqueue_task(0, 1, SimTime::ZERO);
        b.enqueue_task(0, 2, SimTime::ZERO);
        assert_eq!(b.available_at(0, SimTime::ZERO), SimTime::ZERO + SimDuration::from_millis(20));
        let (t1, e1) = b.pop_event().expect("first completion");
        assert_eq!(e1, BackendEvent::TaskDone { executor: 0, query: 1 });
        assert_eq!(t1, SimTime::ZERO + SimDuration::from_millis(10));
        // Backlog task auto-started at the completion instant.
        let (t2, e2) = b.pop_event().expect("second completion");
        assert_eq!(e2, BackendEvent::TaskDone { executor: 0, query: 2 });
        assert_eq!(t2, SimTime::ZERO + SimDuration::from_millis(20));
        assert!(b.pop_event().is_none());
    }

    #[test]
    fn wakes_and_arrivals_interleave_in_time_order() {
        let mut b = SimBackend::new(vec![lat(1.0)], 1, "test");
        b.push_arrival(SimTime::ZERO + SimDuration::from_millis(5), 0);
        b.request_wake(SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::Wake);
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::Arrival(0));
    }
}
