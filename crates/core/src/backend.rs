//! Execution backends: where tasks actually run.
//!
//! The pipelines in [`crate::pipeline`] decide *what* to run (admission,
//! model-set selection, dispatch order); an [`ExecutionBackend`] decides
//! *how* running happens — inside the discrete-event simulator
//! ([`SimBackend`]) or on real worker threads (`schemble-serve`'s threaded
//! backend). Keeping the decision logic in [`crate::engine`] and the
//! execution substrate behind this trait is what lets the same pipeline run
//! unchanged in simulation and in the wall-clock serving runtime, and is
//! also what makes the serve runtime's virtual-clock parity mode possible:
//! the runtime drives the *identical* engine code over a [`SimBackend`], so
//! its admission decisions match the DES pipeline's by construction.
//!
//! Executors are indexed `0..executors()`. For the Schemble pipeline the
//! executor index *is* the base-model index (identity deployment); the
//! immediate-selection family maps instances to base models through its
//! `Deployment`.

use rand::rngs::StdRng;
use schemble_sim::rng::stream_rng;
use schemble_sim::{
    EventQueue, FaultPlan, FaultState, FaultTransition, LatencyModel, ServerBank, SimDuration,
    SimTime, TaskFate, TaskId,
};
use schemble_trace::{TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::sync::Arc;

/// An event surfaced by a backend to the engine driving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendEvent {
    /// Query `workload.queries[i]` has arrived.
    Arrival(usize),
    /// `executor` finished its running task for `query`.
    TaskDone {
        /// Executor (server instance) index.
        executor: usize,
        /// Query id the finished task belonged to.
        query: u64,
    },
    /// `executor`'s task for `query` failed (transient fault, timeout kill,
    /// or executor crash) instead of completing.
    TaskFailed {
        /// Executor (server instance) index.
        executor: usize,
        /// Query id the failed task belonged to.
        query: u64,
    },
    /// `executor` went down (fault-plan crash window opened or its worker
    /// died). Any running task and backlog surface as separate
    /// [`BackendEvent::TaskFailed`] events.
    ExecutorDown {
        /// Executor index.
        executor: usize,
    },
    /// A down `executor` recovered and accepts work again.
    ExecutorUp {
        /// Executor index.
        executor: usize,
    },
    /// A requested wake-up fired (plan effective, predictor done, deadline).
    Wake,
}

/// Per-executor lifetime counters, for usage reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorUsage {
    /// Total busy time in seconds.
    pub busy_secs: f64,
    /// Tasks completed.
    pub tasks: u64,
}

/// An execution substrate for pipeline engines.
///
/// Contract shared by all implementations:
///
/// * **Non-preemptive.** A started task runs to completion; `start_task`
///   panics (or asserts) if the executor is busy.
/// * **Sampling at submission.** The task's (synthetic) execution time is
///   drawn from the executor's latency model when the task is submitted
///   (`start_task`/`enqueue_task`), in call order — this keeps runs
///   deterministic for a fixed seed regardless of substrate.
/// * **Completion surfaces as an event.** The backend delivers
///   [`BackendEvent::TaskDone`] through its own event channel; engines
///   never poll.
pub trait ExecutionBackend {
    /// Number of executors (server instances).
    fn executors(&self) -> usize;

    /// True when `executor` has no running task (a down executor is never
    /// idle — it cannot accept work).
    fn is_idle(&self, executor: usize) -> bool;

    /// True when `executor` is up (not inside a fault-plan crash window and
    /// its worker alive). Backends without fault support are always up.
    fn is_up(&self, _executor: usize) -> bool {
        true
    }

    /// Indices of currently idle executors, ascending.
    fn idle_executors(&self) -> Vec<usize>;

    /// True when any executor is idle.
    fn any_idle(&self) -> bool {
        !self.idle_executors().is_empty()
    }

    /// Earliest time `executor` could start a new task, counting its
    /// backlog at planned (nominal) durations.
    fn available_at(&self, executor: usize, now: SimTime) -> SimTime;

    /// [`Self::available_at`] for every executor.
    fn availability(&self, now: SimTime) -> Vec<SimTime> {
        (0..self.executors()).map(|k| self.available_at(k, now)).collect()
    }

    /// Starts `query` on an idle `executor` immediately (dispatch-on-idle
    /// pipelines). Panics if the executor is busy.
    fn start_task(&mut self, executor: usize, query: u64, now: SimTime);

    /// Appends `query` to `executor`'s FIFO backlog (immediate-selection
    /// pipelines); the executor starts it as soon as it idles.
    fn enqueue_task(&mut self, executor: usize, query: u64, now: SimTime);

    /// Cancels `executor`'s *running* task for `query` (anytime early exit):
    /// the task stops occupying the executor now, its completion never
    /// surfaces, and the time spent so far is charged as busy time — exactly
    /// the accounting a crash kill performs, minus the failure. Returns
    /// whether a matching running task was cancelled; `false` means the
    /// executor is running something else (or nothing), e.g. because a crash
    /// already killed the task, and the caller must leave its bookkeeping to
    /// the failure path. Backends without cancellation support always refuse.
    fn cancel_task(&mut self, _executor: usize, _query: u64, _now: SimTime) -> bool {
        false
    }

    /// Asks the backend to surface [`BackendEvent::Wake`] at `at`.
    fn request_wake(&mut self, at: SimTime);

    /// Lifetime busy-time/task counters per executor.
    fn usage(&self) -> Vec<ExecutorUsage>;
}

/// The discrete-event-simulation backend: a [`ServerBank`] plus an
/// [`EventQueue`], with synthetic latencies drawn from a named RNG stream.
///
/// [`SimBackend::pop_event`] is the simulation loop's clock: it advances
/// virtual time to the next event and performs the executor-side mechanics
/// of completions (retiring the finished task and starting the next backlog
/// task) before handing the event to the engine.
pub struct SimBackend {
    servers: ServerBank,
    events: EventQueue<BackendEvent>,
    latencies: Vec<LatencyModel>,
    rng: StdRng,
    trace: Arc<TraceSink>,
    /// Fault-plan interpreter; `None` keeps the backend byte-identical to
    /// the pre-fault behaviour (no fault RNG draws, no extra events).
    faults: Option<FaultState>,
    /// Up/down transitions from the plan (sorted), for recovery-time lookups.
    transitions: Vec<FaultTransition>,
    /// Per-executor timeout derived from the plan's latency quantile.
    timeouts: Vec<Option<SimDuration>>,
    /// Whether each executor is currently inside a crash window.
    down: Vec<bool>,
    /// Failure flag per *backlogged* task, parallel to each server's FIFO
    /// backlog (fates are decided at submission, consumed at start).
    pending_fate: Vec<VecDeque<bool>>,
    /// Stale completion/failure events of crash-killed tasks, keyed by
    /// `(executor, query, scheduled_time)`; swallowed when they pop.
    suppressed: Vec<(usize, u64, SimTime)>,
}

impl SimBackend {
    /// A backend with one executor per entry of `latencies`, drawing
    /// execution times from the `(seed, stream)` RNG stream.
    pub fn new(latencies: Vec<LatencyModel>, seed: u64, stream: &str) -> Self {
        let n = latencies.len();
        Self {
            servers: ServerBank::new(n),
            events: EventQueue::new(),
            latencies,
            rng: stream_rng(seed, stream),
            trace: TraceSink::disabled(),
            faults: None,
            transitions: Vec::new(),
            timeouts: vec![None; n],
            down: vec![false; n],
            pending_fate: (0..n).map(|_| VecDeque::new()).collect(),
            suppressed: Vec::new(),
        }
    }

    /// Emits task lifecycle events into `trace` (virtual timestamps).
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// Arms the backend with a fault plan, seeding the dedicated `"faults"`
    /// RNG stream from `seed`. The plan's up/down transitions are pushed
    /// into the event queue *now*, before any arrival, so every backend
    /// constructed this way observes them in the same total order.
    pub fn with_faults(mut self, plan: FaultPlan, seed: u64) -> Self {
        if plan.is_noop() {
            return self;
        }
        let transitions = plan.transitions();
        let state = FaultState::new(plan, seed);
        self.timeouts = self.latencies.iter().map(|l| state.timeout_for(l)).collect();
        for tr in &transitions {
            if tr.executor >= self.latencies.len() {
                continue;
            }
            let ev = if tr.up {
                BackendEvent::ExecutorUp { executor: tr.executor }
            } else {
                BackendEvent::ExecutorDown { executor: tr.executor }
            };
            self.events.push(tr.at, ev);
        }
        self.transitions = transitions;
        self.faults = Some(state);
        self
    }

    /// Schedules `Arrival(index)` at `at`.
    pub fn push_arrival(&mut self, at: SimTime, index: usize) {
        self.events.push(at, BackendEvent::Arrival(index));
    }

    /// Advances to and returns the next event, or `None` once drained.
    ///
    /// Completions are applied to the server bank here (including starting
    /// the executor's next backlog task), so by the time the engine sees
    /// [`BackendEvent::TaskDone`] the executor is already idle or re-busy.
    /// Failures are applied the same way; crash transitions kill the running
    /// task and drop the backlog, surfacing one [`BackendEvent::TaskFailed`]
    /// per affected task at the crash instant.
    pub fn pop_event(&mut self) -> Option<(SimTime, BackendEvent)> {
        loop {
            let (now, event) = self.events.pop()?;
            match event {
                BackendEvent::TaskDone { executor, query } => {
                    if self.take_suppressed(executor, query, now) {
                        continue;
                    }
                    self.servers.get_mut(executor).complete(TaskId(query), now);
                    self.trace.emit(TraceEvent::TaskDone {
                        t: now,
                        query,
                        executor: executor as u16,
                    });
                    self.start_next_from_backlog(executor, now);
                }
                BackendEvent::TaskFailed { executor, query } => {
                    if self.take_suppressed(executor, query, now) {
                        continue;
                    }
                    // Scheduled failures (transient/timeout) still occupy the
                    // server; crash notifications pushed by `ExecutorDown`
                    // already released it and pass through untouched.
                    let occupies =
                        self.servers.get(executor).running().is_some_and(|r| r.task.0 == query);
                    if occupies {
                        self.servers.get_mut(executor).fail(TaskId(query), now);
                        self.trace.emit(TraceEvent::TaskFailed {
                            t: now,
                            query,
                            executor: executor as u16,
                        });
                        self.start_next_from_backlog(executor, now);
                    }
                }
                BackendEvent::ExecutorDown { executor } => {
                    self.down[executor] = true;
                    self.trace.emit(TraceEvent::ExecutorDown { t: now, executor: executor as u16 });
                    if let Some(run) = self.servers.get(executor).running() {
                        // Its completion/failure event is still queued;
                        // remember to swallow it when it pops.
                        self.suppressed.push((executor, run.task.0, run.completes_at));
                    }
                    let mut casualties = Vec::new();
                    let server = self.servers.get_mut(executor);
                    casualties.extend(server.kill(now));
                    casualties.extend(server.drain_backlog());
                    self.pending_fate[executor].clear();
                    for task in casualties {
                        self.trace.emit(TraceEvent::TaskFailed {
                            t: now,
                            query: task.0,
                            executor: executor as u16,
                        });
                        self.events.push(now, BackendEvent::TaskFailed { executor, query: task.0 });
                    }
                }
                BackendEvent::ExecutorUp { executor } => {
                    self.down[executor] = false;
                    self.trace.emit(TraceEvent::ExecutorUp { t: now, executor: executor as u16 });
                }
                BackendEvent::Arrival(_) | BackendEvent::Wake => {}
            }
            return Some((now, event));
        }
    }

    fn take_suppressed(&mut self, executor: usize, query: u64, at: SimTime) -> bool {
        match self.suppressed.iter().position(|&(e, q, t)| e == executor && q == query && t == at) {
            Some(i) => {
                self.suppressed.remove(i);
                true
            }
            None => false,
        }
    }

    fn fate_for(&mut self, executor: usize, now: SimTime, sampled: SimDuration) -> TaskFate {
        match self.faults.as_mut() {
            Some(f) => f.task_fate(executor, now, sampled, self.timeouts[executor]),
            None => TaskFate { duration: sampled, failed: false },
        }
    }

    fn start_next_from_backlog(&mut self, executor: usize, now: SimTime) {
        if self.down[executor] {
            return;
        }
        if let Some(run) = self.servers.get_mut(executor).start_next(now) {
            let failed = self.pending_fate[executor].pop_front().unwrap_or(false);
            let ev = if failed {
                BackendEvent::TaskFailed { executor, query: run.task.0 }
            } else {
                BackendEvent::TaskDone { executor, query: run.task.0 }
            };
            self.events.push(run.completes_at, ev);
            self.trace.emit(TraceEvent::TaskStart {
                t: now,
                query: run.task.0,
                executor: executor as u16,
            });
        }
    }

    /// First recovery instant after `now` for a down executor.
    fn recovery_time(&self, executor: usize, now: SimTime) -> SimTime {
        self.transitions
            .iter()
            .find(|t| t.executor == executor && t.up && t.at > now)
            .map_or(now, |t| t.at)
    }
}

impl ExecutionBackend for SimBackend {
    fn executors(&self) -> usize {
        self.latencies.len()
    }

    fn is_idle(&self, executor: usize) -> bool {
        !self.down[executor] && self.servers.get(executor).is_idle()
    }

    fn is_up(&self, executor: usize) -> bool {
        !self.down[executor]
    }

    fn idle_executors(&self) -> Vec<usize> {
        (0..self.executors()).filter(|&k| self.is_idle(k)).collect()
    }

    fn any_idle(&self) -> bool {
        (0..self.executors()).any(|k| self.is_idle(k))
    }

    fn available_at(&self, executor: usize, now: SimTime) -> SimTime {
        let base = self.servers.get(executor).available_at(now);
        if self.down[executor] {
            base.max(self.recovery_time(executor, now))
        } else {
            base
        }
    }

    fn start_task(&mut self, executor: usize, query: u64, now: SimTime) {
        assert!(!self.down[executor], "start_task on a down executor");
        let sampled = self.latencies[executor].sample(&mut self.rng);
        let fate = self.fate_for(executor, now, sampled);
        let run =
            self.servers.get_mut(executor).start_immediately(TaskId(query), now, fate.duration);
        let ev = if fate.failed {
            BackendEvent::TaskFailed { executor, query }
        } else {
            BackendEvent::TaskDone { executor, query }
        };
        self.events.push(run.completes_at, ev);
        self.trace.emit(TraceEvent::TaskStart { t: now, query, executor: executor as u16 });
    }

    fn enqueue_task(&mut self, executor: usize, query: u64, now: SimTime) {
        debug_assert!(!self.down[executor], "enqueue onto a down executor");
        let sampled = self.latencies[executor].sample(&mut self.rng);
        let fate = self.fate_for(executor, now, sampled);
        let server = self.servers.get_mut(executor);
        let was_idle = server.is_idle();
        server.enqueue(TaskId(query), fate.duration);
        self.pending_fate[executor].push_back(fate.failed);
        if was_idle {
            self.start_next_from_backlog(executor, now);
        } else {
            self.trace.emit(TraceEvent::TaskEnqueue { t: now, query, executor: executor as u16 });
        }
    }

    fn cancel_task(&mut self, executor: usize, query: u64, now: SimTime) -> bool {
        let Some((task, completes_at)) =
            self.servers.get(executor).running().map(|r| (r.task.0, r.completes_at))
        else {
            return false;
        };
        if task != query {
            return false;
        }
        // The task's completion (or scheduled failure) event is still
        // queued; swallow it when it pops — same mechanism as a crash kill.
        self.suppressed.push((executor, task, completes_at));
        // `kill` charges the partial busy time; unlike `ExecutorDown`, the
        // casualty is discarded (a quit is not a failure, so no `TaskFailed`
        // surfaces) and the backlog is left intact.
        let _ = self.servers.get_mut(executor).kill(now);
        self.start_next_from_backlog(executor, now);
        true
    }

    fn request_wake(&mut self, at: SimTime) {
        self.events.push(at, BackendEvent::Wake);
    }

    fn usage(&self) -> Vec<ExecutorUsage> {
        (0..self.latencies.len())
            .map(|k| ExecutorUsage {
                busy_secs: self.servers.get(k).busy_time().as_secs_f64(),
                tasks: self.servers.get(k).completed_tasks(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_sim::SimDuration;

    fn lat(ms: f64) -> LatencyModel {
        LatencyModel::constant_millis(ms)
    }

    #[test]
    fn start_task_surfaces_completion() {
        let mut b = SimBackend::new(vec![lat(10.0), lat(20.0)], 1, "test");
        assert_eq!(b.executors(), 2);
        assert!(b.any_idle());
        b.start_task(0, 7, SimTime::ZERO);
        assert!(!b.is_idle(0));
        assert!(b.is_idle(1));
        let (t, ev) = b.pop_event().expect("completion queued");
        assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(ev, BackendEvent::TaskDone { executor: 0, query: 7 });
        assert!(b.is_idle(0));
        assert_eq!(b.usage()[0].tasks, 1);
    }

    #[test]
    fn enqueue_chains_backlog_tasks() {
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test");
        b.enqueue_task(0, 1, SimTime::ZERO);
        b.enqueue_task(0, 2, SimTime::ZERO);
        assert_eq!(b.available_at(0, SimTime::ZERO), SimTime::ZERO + SimDuration::from_millis(20));
        let (t1, e1) = b.pop_event().expect("first completion");
        assert_eq!(e1, BackendEvent::TaskDone { executor: 0, query: 1 });
        assert_eq!(t1, SimTime::ZERO + SimDuration::from_millis(10));
        // Backlog task auto-started at the completion instant.
        let (t2, e2) = b.pop_event().expect("second completion");
        assert_eq!(e2, BackendEvent::TaskDone { executor: 0, query: 2 });
        assert_eq!(t2, SimTime::ZERO + SimDuration::from_millis(20));
        assert!(b.pop_event().is_none());
    }

    #[test]
    fn crash_kills_running_task_and_drops_backlog() {
        let plan = FaultPlan::parse("crash 0 0.015 0.040").unwrap();
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test").with_faults(plan, 1);
        b.enqueue_task(0, 1, SimTime::ZERO); // runs 0..10ms... restarts as q2 at 10ms
        b.enqueue_task(0, 2, SimTime::ZERO); // running at crash time 15ms → killed
        b.enqueue_task(0, 3, SimTime::ZERO); // backlogged at crash → dropped
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::TaskDone { executor: 0, query: 1 });
        let (t, ev) = b.pop_event().unwrap();
        assert_eq!(ev, BackendEvent::ExecutorDown { executor: 0 });
        assert_eq!(t, SimTime::from_micros(15_000));
        assert!(!b.is_up(0));
        assert!(!b.is_idle(0), "down executor is not idle");
        // Killed running task and dropped backlog task surface as failures
        // at the crash instant; the stale completion of q2 is swallowed.
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::TaskFailed { executor: 0, query: 2 });
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::TaskFailed { executor: 0, query: 3 });
        // Down executor advertises its recovery time.
        assert_eq!(b.available_at(0, t), SimTime::from_micros(40_000));
        let (t_up, up) = b.pop_event().unwrap();
        assert_eq!(up, BackendEvent::ExecutorUp { executor: 0 });
        assert_eq!(t_up, SimTime::from_micros(40_000));
        assert!(b.is_up(0) && b.is_idle(0));
        assert!(b.pop_event().is_none(), "stale completion was suppressed");
        // Partial busy time of the killed task (10..15ms) is charged.
        assert!((b.usage()[0].busy_secs - 0.015).abs() < 1e-9);
        assert_eq!(b.usage()[0].tasks, 1, "killed tasks don't count as completed");
    }

    #[test]
    fn timeout_surfaces_task_failed_at_the_cap() {
        // 3x straggler pushes the 10ms task past the q=1.0 timeout (= 10ms
        // nominal with zero jitter), so it is killed at the cap.
        let plan = FaultPlan::parse("straggle 0 0 1 3.0\ntimeout-q 1.0").unwrap();
        let mut b = SimBackend::new(vec![lat(10.0)], 1, "test").with_faults(plan, 1);
        b.start_task(0, 9, SimTime::ZERO);
        let (t, ev) = b.pop_event().unwrap();
        assert_eq!(ev, BackendEvent::TaskFailed { executor: 0, query: 9 });
        assert_eq!(t, SimTime::from_micros(10_000), "killed at the timeout, not at 30ms");
        assert!(b.is_idle(0), "failed task releases the executor");
        assert_eq!(b.usage()[0].tasks, 0);
    }

    #[test]
    fn noop_fault_plan_changes_nothing() {
        let mut plain = SimBackend::new(vec![lat(10.0)], 7, "test");
        let mut armed =
            SimBackend::new(vec![lat(10.0)], 7, "test").with_faults(FaultPlan::default(), 7);
        for b in [&mut plain, &mut armed] {
            b.start_task(0, 1, SimTime::ZERO);
        }
        assert_eq!(plain.pop_event(), armed.pop_event());
    }

    #[test]
    fn wakes_and_arrivals_interleave_in_time_order() {
        let mut b = SimBackend::new(vec![lat(1.0)], 1, "test");
        b.push_arrival(SimTime::ZERO + SimDuration::from_millis(5), 0);
        b.request_wake(SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::Wake);
        assert_eq!(b.pop_event().unwrap().1, BackendEvent::Arrival(0));
    }
}
