//! Experiment plumbing: configurations, contexts and one-call pipeline runs.
//!
//! An [`ExperimentContext`] trains the Schemble artifacts once per
//! `(task, seed)` and then runs any number of pipeline variants over any
//! workload — the deadline sweeps of Exp-1/4 reuse the same trained state,
//! exactly as a deployed system would.

use crate::artifacts::SchembleArtifacts;
use crate::discrepancy::DifficultyMetric;
use crate::pipeline::immediate::{
    run_immediate_traced, Deployment, FixedSubsetPolicy, FullEnsemblePolicy,
};
use crate::pipeline::schemble::{run_schemble_traced, SchembleConfig};
use crate::pipeline::static_select::best_static_deployment;
use crate::pipeline::{AdmissionMode, ResultAssembler};
use crate::predictor::OnlineScorer;
use crate::scheduler::{DpScheduler, GreedyScheduler, QueueOrder, Scheduler};
use schemble_data::{DeadlinePolicy, DiurnalTrace, PoissonTrace, TaskKind, Workload};
use schemble_metrics::RunSummary;
use schemble_models::{DifficultyDist, Ensemble, SampleGenerator};
use schemble_trace::TraceSink;
use std::sync::Arc;

/// Arrival process of an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Traffic {
    /// Homogeneous Poisson at the given rate.
    Poisson {
        /// Queries per second.
        rate_per_sec: f64,
    },
    /// The compressed one-day diurnal trace (text matching).
    Diurnal {
        /// Compressed day length in seconds.
        day_secs: f64,
    },
}

/// A fully specified experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Which application.
    pub task: TaskKind,
    /// Root seed (models, workloads, training all derive from it).
    pub seed: u64,
    /// Number of queries.
    pub n_queries: usize,
    /// Arrival process.
    pub traffic: Traffic,
    /// Deadline policy.
    pub deadline: DeadlinePolicy,
    /// Latent difficulty distribution of the query payloads.
    pub difficulty: DifficultyDist,
    /// Admission mode.
    pub admission: AdmissionMode,
    /// Historical samples used for training artifacts.
    pub history_n: usize,
}

impl ExperimentConfig {
    /// A fast, small configuration for tests and the quickstart example.
    pub fn small(task: TaskKind, seed: u64) -> Self {
        Self {
            task,
            seed,
            n_queries: 400,
            traffic: Traffic::Poisson { rate_per_sec: default_rate(task) },
            deadline: default_deadline(task),
            difficulty: task.default_difficulty(),
            admission: AdmissionMode::Reject,
            history_n: 600,
        }
    }

    /// The paper-scale defaults per task (§VIII): diurnal trace for text
    /// matching, Poisson for the other two.
    pub fn paper_default(task: TaskKind, seed: u64) -> Self {
        // Diurnal day length keeps the mean rate at 15/s (peak ≈ 44/s, about
        // 2× the Original pipeline's capacity — the Fig. 1a overload regime).
        let traffic = match task {
            TaskKind::TextMatching => Traffic::Diurnal { day_secs: 12_000.0 / 15.0 },
            _ => Traffic::Poisson { rate_per_sec: default_rate(task) },
        };
        Self {
            task,
            seed,
            n_queries: 12_000,
            traffic,
            deadline: default_deadline(task),
            difficulty: task.default_difficulty(),
            admission: AdmissionMode::Reject,
            history_n: 2000,
        }
    }

    /// Same configuration with a different constant deadline (sweeps).
    pub fn with_deadline_millis(mut self, ms: f64) -> Self {
        self.deadline = match self.task {
            TaskKind::VehicleCounting => DeadlinePolicy::cameras_around_millis(ms),
            _ => DeadlinePolicy::constant_millis(ms),
        };
        self
    }
}

/// Per-task default query rate: comfortably above the Original pipeline's
/// capacity (the paper's overload regime) but below the aggregate
/// single-model capacity so difficulty-aware scheduling has room to win.
pub fn default_rate(task: TaskKind) -> f64 {
    match task {
        TaskKind::TextMatching => 45.0, // Original capacity ≈ 1/48ms ≈ 21/s
        TaskKind::VehicleCounting => 48.0, // capacity ≈ 1/34ms ≈ 29/s
        TaskKind::ImageRetrieval => 24.0, // capacity ≈ 1/85ms ≈ 12/s
    }
}

/// Per-task default mean deadline, above the slowest model (§VIII).
pub fn default_deadline(task: TaskKind) -> DeadlinePolicy {
    match task {
        TaskKind::TextMatching => DeadlinePolicy::constant_millis(105.0),
        TaskKind::VehicleCounting => DeadlinePolicy::cameras_around_millis(90.0),
        TaskKind::ImageRetrieval => DeadlinePolicy::constant_millis(180.0),
    }
}

/// The pipeline variants runnable directly from core. (DES and Gating live
/// in `schemble-baselines` and plug in through
/// [`crate::pipeline::SelectionPolicy`].)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PipelineKind {
    /// Original: all models for every query.
    Original,
    /// Static subset + replicas, greedy-searched on a pilot.
    Static,
    /// Full Schemble (DP δ=0.01, NN score predictor).
    Schemble,
    /// Schemble with the ensemble-agreement difficulty metric.
    SchembleEa,
    /// Schemble without difficulty prediction (constant score).
    SchembleT,
    /// Schemble with oracle (true) discrepancy scores.
    SchembleOracle,
    /// Schemble with a greedy scheduler in the given queue order (Exp-4).
    Greedy(QueueOrder),
    /// Schemble with a DP scheduler at a specific quantization step (Exp-4).
    DpDelta(f64),
}

impl PipelineKind {
    /// Label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            PipelineKind::Original => "Original".into(),
            PipelineKind::Static => "Static".into(),
            PipelineKind::Schemble => "Schemble".into(),
            PipelineKind::SchembleEa => "Schemble(ea)".into(),
            PipelineKind::SchembleT => "Schemble(t)".into(),
            PipelineKind::SchembleOracle => "Schemble(oracle)".into(),
            PipelineKind::Greedy(QueueOrder::Edf) => "Greedy+EDF".into(),
            PipelineKind::Greedy(QueueOrder::Fifo) => "Greedy+FIFO".into(),
            PipelineKind::Greedy(QueueOrder::Sjf) => "Greedy+SJF".into(),
            PipelineKind::DpDelta(d) => format!("DP(δ={d})"),
        }
    }
}

/// Trained state reused across runs of one experiment.
pub struct ExperimentContext {
    /// The configuration.
    pub config: ExperimentConfig,
    /// The deployed ensemble.
    pub ensemble: Ensemble,
    /// The query generator.
    pub generator: SampleGenerator,
    artifacts: Option<SchembleArtifacts>,
    ea_artifacts: Option<SchembleArtifacts>,
}

impl ExperimentContext {
    /// Builds the context (no training yet — artifacts are lazy).
    pub fn new(config: ExperimentConfig) -> Self {
        let ensemble = config.task.ensemble(config.seed);
        let generator = config.task.generator(config.difficulty, config.seed);
        Self { config, ensemble, generator, artifacts: None, ea_artifacts: None }
    }

    /// The trained Schemble artifacts (trained on first use).
    pub fn artifacts(&mut self) -> &SchembleArtifacts {
        if self.artifacts.is_none() {
            self.artifacts = Some(SchembleArtifacts::build(
                &self.ensemble,
                &self.generator,
                self.config.history_n,
                crate::profiling::AccuracyProfile::DEFAULT_BINS,
                DifficultyMetric::Discrepancy,
                self.config.seed,
            ));
        }
        self.artifacts.as_ref().expect("just built")
    }

    /// The ensemble-agreement artifacts (Schemble(ea)).
    pub fn ea_artifacts(&mut self) -> &SchembleArtifacts {
        if self.ea_artifacts.is_none() {
            self.ea_artifacts = Some(SchembleArtifacts::build(
                &self.ensemble,
                &self.generator,
                self.config.history_n,
                crate::profiling::AccuracyProfile::DEFAULT_BINS,
                DifficultyMetric::EnsembleAgreement,
                self.config.seed,
            ));
        }
        self.ea_artifacts.as_ref().expect("just built")
    }

    /// Generates the workload described by the config.
    pub fn workload(&self) -> Workload {
        let deadline = self.config.deadline.clone();
        match self.config.traffic {
            Traffic::Poisson { rate_per_sec } => Workload::generate(
                &self.generator,
                &PoissonTrace { rate_per_sec, n: self.config.n_queries },
                &deadline,
                self.config.seed,
            ),
            Traffic::Diurnal { day_secs } => Workload::generate(
                &self.generator,
                &DiurnalTrace { n: self.config.n_queries, day_secs },
                &deadline,
                self.config.seed,
            ),
        }
    }

    /// The diurnal trace helper (segment mapping for Fig. 9/14); `None` for
    /// Poisson traffic.
    pub fn diurnal(&self) -> Option<DiurnalTrace> {
        match self.config.traffic {
            Traffic::Diurnal { day_secs } => {
                Some(DiurnalTrace { n: self.config.n_queries, day_secs })
            }
            Traffic::Poisson { .. } => None,
        }
    }

    /// Runs one pipeline variant on a workload.
    pub fn run(&mut self, kind: PipelineKind, workload: &Workload) -> RunSummary {
        self.run_traced(kind, workload, TraceSink::disabled())
    }

    /// [`Self::run`] with lifecycle events emitted into `trace`.
    pub fn run_traced(
        &mut self,
        kind: PipelineKind,
        workload: &Workload,
        trace: Arc<TraceSink>,
    ) -> RunSummary {
        let admission = self.config.admission;
        let seed = self.config.seed;
        match kind {
            PipelineKind::Original => run_immediate_traced(
                &self.ensemble,
                &Deployment::identity(self.ensemble.m()),
                &mut FullEnsemblePolicy,
                &ResultAssembler::Direct,
                workload,
                admission,
                seed,
                trace,
            ),
            PipelineKind::Static => {
                let pilot = (workload.len() / 5).clamp(100, 2000);
                let (set, deployment) =
                    best_static_deployment(&self.ensemble, workload, pilot, seed);
                run_immediate_traced(
                    &self.ensemble,
                    &deployment,
                    &mut FixedSubsetPolicy { set },
                    &ResultAssembler::Direct,
                    workload,
                    admission,
                    seed,
                    trace,
                )
            }
            PipelineKind::Schemble => {
                let scorer = OnlineScorer::Predictor(self.artifacts().predictor.clone());
                self.run_schemble_variant(
                    Box::new(DpScheduler::default()),
                    scorer,
                    false,
                    workload,
                    trace,
                )
            }
            PipelineKind::SchembleEa => {
                let scorer = OnlineScorer::Predictor(self.ea_artifacts().predictor.clone());
                self.run_schemble_variant(
                    Box::new(DpScheduler::default()),
                    scorer,
                    true,
                    workload,
                    trace,
                )
            }
            PipelineKind::SchembleT => {
                let c = self.artifacts().mean_score;
                self.run_schemble_variant(
                    Box::new(DpScheduler::default()),
                    OnlineScorer::Constant(c),
                    false,
                    workload,
                    trace,
                )
            }
            PipelineKind::SchembleOracle => {
                let scorer = OnlineScorer::Oracle(self.artifacts().scorer.clone());
                self.run_schemble_variant(
                    Box::new(DpScheduler::default()),
                    scorer,
                    false,
                    workload,
                    trace,
                )
            }
            PipelineKind::Greedy(order) => {
                let scorer = OnlineScorer::Predictor(self.artifacts().predictor.clone());
                self.run_schemble_variant(
                    Box::new(GreedyScheduler::new(order)),
                    scorer,
                    false,
                    workload,
                    trace,
                )
            }
            PipelineKind::DpDelta(delta) => {
                let scorer = OnlineScorer::Predictor(self.artifacts().predictor.clone());
                self.run_schemble_variant(
                    Box::new(DpScheduler::with_delta(delta)),
                    scorer,
                    false,
                    workload,
                    trace,
                )
            }
        }
    }

    fn run_schemble_variant(
        &mut self,
        scheduler: Box<dyn Scheduler>,
        scorer: OnlineScorer,
        ea: bool,
        workload: &Workload,
        trace: Arc<TraceSink>,
    ) -> RunSummary {
        let profile =
            if ea { self.ea_artifacts().profile.clone() } else { self.artifacts().profile.clone() };
        let mut config = SchembleConfig::new(scheduler, scorer, profile);
        config.admission = self.config.admission;
        run_schemble_traced(&self.ensemble, &config, workload, self.config.seed, trace)
    }
}

/// One-call convenience: build a context, generate the workload, run.
pub fn run_pipeline(config: &ExperimentConfig, kind: PipelineKind) -> RunSummary {
    let mut ctx = ExperimentContext::new(config.clone());
    let workload = ctx.workload();
    ctx.run(kind, &workload)
}

/// Re-export for doc examples.
pub use crate::pipeline::AdmissionMode as Admission;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_runs_all_core_pipelines() {
        let mut config = ExperimentConfig::small(TaskKind::TextMatching, 42);
        config.n_queries = 150;
        let mut ctx = ExperimentContext::new(config);
        let workload = ctx.workload();
        for kind in [
            PipelineKind::Original,
            PipelineKind::Static,
            PipelineKind::Schemble,
            PipelineKind::SchembleT,
        ] {
            let summary = ctx.run(kind, &workload);
            assert_eq!(summary.len(), workload.len(), "{:?} lost queries", kind);
        }
    }

    #[test]
    fn schemble_beats_original_under_default_load() {
        let mut config = ExperimentConfig::small(TaskKind::TextMatching, 7);
        config.n_queries = 400;
        let mut ctx = ExperimentContext::new(config);
        let workload = ctx.workload();
        let schemble = ctx.run(PipelineKind::Schemble, &workload);
        let original = ctx.run(PipelineKind::Original, &workload);
        assert!(
            schemble.accuracy() > original.accuracy(),
            "schemble {:.3} vs original {:.3}",
            schemble.accuracy(),
            original.accuracy()
        );
        assert!(schemble.deadline_miss_rate() < original.deadline_miss_rate());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PipelineKind::Schemble.label(), "Schemble");
        assert_eq!(PipelineKind::Greedy(QueueOrder::Sjf).label(), "Greedy+SJF");
        assert_eq!(PipelineKind::DpDelta(0.1).label(), "DP(δ=0.1)");
    }

    #[test]
    fn deadline_override_respects_task() {
        let cfg = ExperimentConfig::small(TaskKind::VehicleCounting, 1).with_deadline_millis(150.0);
        assert!(matches!(cfg.deadline, DeadlinePolicy::PerCameraUniform { .. }));
        let cfg = ExperimentConfig::small(TaskKind::TextMatching, 1).with_deadline_millis(150.0);
        assert!(matches!(cfg.deadline, DeadlinePolicy::Constant(_)));
    }
}
