//! The discrepancy score (Eq. 1) and the ensemble-agreement baseline.
//!
//! For sample `x` with calibrated base-model outputs `f_k(x)` and ensemble
//! output `E(x)`:
//!
//! ```text
//! Dis(x) = (1/m) Σ_k Norm_x( d(f_k(x), E(x)) )
//! ```
//!
//! `d` is JS divergence for categorical outputs, Euclidean distance for
//! regression. `Norm` is a per-model z-score fitted on historical data so
//! that inaccurate models (whose distances are large *on average*) do not
//! dominate the sum — the paper's fix for heterogeneous ensembles. Scores are
//! finally min-max rescaled to `[0, 1]` on the fit set so they can be binned.
//!
//! The **ensemble agreement** metric (Carlini et al.) that the paper compares
//! against averages the pairwise symmetric-KL between *raw* base-model
//! outputs — no calibration, no per-model normalisation, no reference to the
//! ensemble's output. Both are implemented behind [`DifficultyMetric`] so the
//! Schemble(ea) ablation swaps cleanly.

use crate::calibration::Calibration;
use schemble_models::{Ensemble, Output, Sample};
use schemble_tensor::stats::{MinMax, ZScore};

/// Which difficulty metric a scorer computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DifficultyMetric {
    /// The paper's discrepancy score (Eq. 1).
    Discrepancy,
    /// The ensemble-agreement baseline (pairwise symmetric KL, uncalibrated).
    EnsembleAgreement,
}

/// A fitted difficulty scorer. Computing a score requires the base models'
/// outputs, so this is an *offline* oracle: it labels historical data for
/// predictor training and profiling, and serves as the ground-truth scorer in
/// the oracle ablations.
#[derive(Debug, Clone)]
pub struct DiscrepancyScorer {
    metric: DifficultyMetric,
    calibration: Calibration,
    /// Per-model distance normalisers (discrepancy metric only).
    norms: Vec<ZScore>,
    /// Final rescale of the averaged score into [0, 1].
    rescale: MinMax,
}

impl DiscrepancyScorer {
    /// Fits the scorer on historical samples.
    ///
    /// # Panics
    /// Panics on an empty history.
    pub fn fit(ensemble: &Ensemble, history: &[Sample], metric: DifficultyMetric) -> Self {
        assert!(!history.is_empty(), "cannot fit scorer on empty history");
        let calibration = match metric {
            // Agreement baseline deliberately skips calibration — that is
            // one of the two failure modes the paper identifies in it.
            DifficultyMetric::EnsembleAgreement => Calibration::identity(ensemble.m()),
            DifficultyMetric::Discrepancy => Calibration::fit(ensemble, history),
        };
        // First pass: raw per-model distances on the whole history.
        let m = ensemble.m();
        let mut per_model: Vec<Vec<f64>> = vec![Vec::with_capacity(history.len()); m];
        for s in history {
            let d = raw_distances(ensemble, &calibration, s, metric);
            for (k, v) in d.into_iter().enumerate() {
                per_model[k].push(v);
            }
        }
        let norms: Vec<ZScore> = match metric {
            DifficultyMetric::Discrepancy => per_model.iter().map(|xs| ZScore::fit(xs)).collect(),
            // Agreement has no per-model normalisation.
            DifficultyMetric::EnsembleAgreement => {
                per_model.iter().map(|_| ZScore { mean: 0.0, std: 1.0 }).collect()
            }
        };
        // Second pass: averaged normalised scores, then fit the [0,1] map.
        let combined: Vec<f64> = (0..history.len())
            .map(|i| (0..m).map(|k| norms[k].apply(per_model[k][i])).sum::<f64>() / m as f64)
            .collect();
        let rescale = MinMax::fit(&combined);
        Self { metric, calibration, norms, rescale }
    }

    /// The metric this scorer computes.
    pub fn metric(&self) -> DifficultyMetric {
        self.metric
    }

    /// Borrow of the fitted calibration.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Scores one sample in `[0, 1]` (runs all base models — offline only).
    pub fn score(&self, ensemble: &Ensemble, sample: &Sample) -> f64 {
        let d = raw_distances(ensemble, &self.calibration, sample, self.metric);
        let avg = d.into_iter().enumerate().map(|(k, v)| self.norms[k].apply(v)).sum::<f64>()
            / ensemble.m() as f64;
        self.rescale.apply(avg)
    }

    /// Scores a batch of samples.
    pub fn score_batch(&self, ensemble: &Ensemble, samples: &[Sample]) -> Vec<f64> {
        samples.iter().map(|s| self.score(ensemble, s)).collect()
    }
}

/// Raw (pre-normalisation) per-model distances for one sample.
fn raw_distances(
    ensemble: &Ensemble,
    calibration: &Calibration,
    sample: &Sample,
    metric: DifficultyMetric,
) -> Vec<f64> {
    let outputs = ensemble.infer_all(sample);
    let calibrated: Vec<Output> =
        outputs.iter().enumerate().map(|(k, o)| calibration.apply(k, o)).collect();
    match metric {
        DifficultyMetric::Discrepancy => {
            // Ensemble output aggregates the *raw* outputs (aggregation is
            // part of the deployed model); distances use calibrated ones.
            let raw_refs: Vec<(usize, &Output)> = outputs.iter().enumerate().collect();
            let ens_raw = ensemble.aggregate(&raw_refs);
            // Calibrate the reference with each model's own temperature so
            // both sides of the divergence live on the same confidence scale.
            calibrated
                .iter()
                .enumerate()
                .map(|(k, o)| o.distance(&self_calibrated(&ens_raw, calibration, k)))
                .collect()
        }
        DifficultyMetric::EnsembleAgreement => {
            // Mean pairwise symmetric KL of raw outputs, attributed equally
            // to each model (so the same per-model averaging code applies).
            let m = outputs.len();
            let mut total = vec![0.0; m];
            for i in 0..m {
                for j in 0..m {
                    if i != j {
                        total[i] += outputs[i].agreement_distance(&outputs[j]);
                    }
                }
            }
            let denom = (m.max(2) - 1) as f64;
            total.into_iter().map(|t| t / denom).collect()
        }
    }
}

fn self_calibrated(ens_out: &Output, calibration: &Calibration, k: usize) -> Output {
    calibration.apply(k, ens_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_models::zoo;
    use schemble_models::{DifficultyDist, SampleGenerator};
    use schemble_tensor::stats::pearson;

    fn history(n: usize) -> (Ensemble, Vec<Sample>) {
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let h = gen.batch(0, n);
        (ens, h)
    }

    #[test]
    fn scores_live_in_unit_interval() {
        let (ens, h) = history(800);
        let scorer = DiscrepancyScorer::fit(&ens, &h, DifficultyMetric::Discrepancy);
        for s in &h {
            let v = scorer.score(&ens, s);
            assert!((0.0..=1.0).contains(&v), "score {v} out of range");
        }
    }

    #[test]
    fn discrepancy_tracks_latent_difficulty() {
        let (ens, h) = history(1500);
        let scorer = DiscrepancyScorer::fit(&ens, &h, DifficultyMetric::Discrepancy);
        let scores = scorer.score_batch(&ens, &h);
        let zs: Vec<f64> = h.iter().map(|s| s.difficulty).collect();
        let corr = pearson(&scores, &zs);
        assert!(corr > 0.40, "discrepancy/difficulty correlation too weak: {corr:.3}");
    }

    #[test]
    fn discrepancy_outranks_agreement_on_difficulty() {
        // The paper's core claim for the metric: with heterogeneous,
        // miscalibrated models, the normalised+calibrated discrepancy score
        // ranks samples by difficulty better than raw ensemble agreement.
        let (ens, h) = history(1500);
        let dis = DiscrepancyScorer::fit(&ens, &h, DifficultyMetric::Discrepancy);
        let ea = DiscrepancyScorer::fit(&ens, &h, DifficultyMetric::EnsembleAgreement);
        let zs: Vec<f64> = h.iter().map(|s| s.difficulty).collect();
        let c_dis = pearson(&dis.score_batch(&ens, &h), &zs);
        let c_ea = pearson(&ea.score_batch(&ens, &h), &zs);
        assert!(c_dis > c_ea, "discrepancy ({c_dis:.3}) should beat agreement ({c_ea:.3})");
    }

    #[test]
    fn easy_samples_score_low() {
        let (ens, h) = history(1000);
        let scorer = DiscrepancyScorer::fit(&ens, &h, DifficultyMetric::Discrepancy);
        let easy_gen = SampleGenerator::new(ens.spec, DifficultyDist::Fixed(0.02), 7);
        let hard_gen = SampleGenerator::new(ens.spec, DifficultyDist::Fixed(0.98), 7);
        let easy: f64 =
            scorer.score_batch(&ens, &easy_gen.batch(0, 300)).iter().sum::<f64>() / 300.0;
        let hard: f64 =
            scorer.score_batch(&ens, &hard_gen.batch(0, 300)).iter().sum::<f64>() / 300.0;
        assert!(easy + 0.1 < hard, "easy mean {easy:.3} should sit below hard mean {hard:.3}");
    }

    #[test]
    fn works_for_regression_ensembles() {
        let ens = zoo::vehicle_counting(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let h = gen.batch(0, 800);
        let scorer = DiscrepancyScorer::fit(&ens, &h, DifficultyMetric::Discrepancy);
        let scores = scorer.score_batch(&ens, &h);
        let zs: Vec<f64> = h.iter().map(|s| s.difficulty).collect();
        assert!(pearson(&scores, &zs) > 0.4);
        assert!(scores.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn score_is_stable_across_ensemble_reseeding() {
        // Fig. 5 diagonal: discrepancy scores from re-seeded ensembles stay
        // strongly correlated, unlike per-model preferences.
        let ens_a = zoo::text_matching(100);
        let ens_b = zoo::text_matching(200);
        let gen = SampleGenerator::new(ens_a.spec, DifficultyDist::Uniform, 5);
        let h = gen.batch(0, 1000);
        let sc_a = DiscrepancyScorer::fit(&ens_a, &h, DifficultyMetric::Discrepancy);
        let sc_b = DiscrepancyScorer::fit(&ens_b, &h, DifficultyMetric::Discrepancy);
        let a = sc_a.score_batch(&ens_a, &h);
        let b = sc_b.score_batch(&ens_b, &h);
        let corr = pearson(&a, &b);
        assert!(corr > 0.15, "reseeded-ensemble score correlation too weak: {corr:.3}");
    }
}
