//! Missing-value filling (§VII).
//!
//! When a query runs only a subset of models, aggregation must cope with the
//! absent outputs. Voting and weighted averaging handle this structurally
//! (exclusion / renormalisation — implemented in `schemble-models`). The
//! stacking meta-classifier has a fixed input arity, so missing outputs are
//! **filled by KNN** over a bank of full historical output files: the `k`
//! most similar complete rows (by distance on the *present* dimensions) are
//! averaged with inverse-distance weights to impute the missing dimensions.

use schemble_models::{Ensemble, ModelSet, Output, Sample};
use schemble_tensor::dist::euclidean_sq;

/// KNN imputation bank built from full historical inference results.
#[derive(Debug, Clone)]
pub struct KnnFiller {
    /// Complete output files: one row per historical sample, dimensions =
    /// concatenated per-model output vectors.
    bank: Vec<Vec<f64>>,
    /// Per-model output dimension offsets into a row.
    offsets: Vec<usize>,
    /// Total row width.
    width: usize,
    /// Neighbourhood size.
    pub k: usize,
}

impl KnnFiller {
    /// Builds the bank by running the full ensemble on `history`.
    ///
    /// # Panics
    /// Panics on an empty history or `k == 0`.
    pub fn fit(ensemble: &Ensemble, history: &[Sample], k: usize) -> Self {
        assert!(!history.is_empty(), "cannot build KNN bank from empty history");
        assert!(k > 0, "k must be positive");
        let dim = ensemble.spec.output_dim();
        let offsets: Vec<usize> = (0..ensemble.m()).map(|i| i * dim).collect();
        let width = ensemble.m() * dim;
        let bank = history
            .iter()
            .map(|s| ensemble.infer_all(s).iter().flat_map(Output::as_vec).collect::<Vec<f64>>())
            .collect();
        Self { bank, offsets, width, k }
    }

    /// Bank size.
    pub fn len(&self) -> usize {
        self.bank.len()
    }

    /// True when the bank is empty (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.bank.is_empty()
    }

    /// Fills a partial observation: `present` maps model index → output.
    /// Returns the full concatenated row with missing dimensions imputed
    /// from the `k` nearest complete rows (inverse-distance weighting).
    ///
    /// # Panics
    /// Panics if `present` is empty.
    pub fn fill(&self, present: &[(usize, &Output)], executed: ModelSet) -> Vec<f64> {
        assert!(!present.is_empty(), "cannot fill with zero observed outputs");
        let dim = self.width / self.offsets.len();
        // Observed coordinates.
        let mut row = vec![0.0f64; self.width];
        let mut observed_dims: Vec<usize> = Vec::new();
        for (model, out) in present {
            let v = out.as_vec();
            let base = self.offsets[*model];
            for (j, &x) in v.iter().enumerate() {
                row[base + j] = x;
                observed_dims.push(base + j);
            }
        }
        // k nearest bank rows by distance on observed dims.
        let mut scored: Vec<(f64, usize)> = self
            .bank
            .iter()
            .enumerate()
            .map(|(i, bank_row)| {
                let obs: Vec<f64> = observed_dims.iter().map(|&d| row[d]).collect();
                let bnk: Vec<f64> = observed_dims.iter().map(|&d| bank_row[d]).collect();
                (euclidean_sq(&obs, &bnk), i)
            })
            .collect();
        let k = self.k.min(scored.len());
        scored.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
        let neighbours = &scored[..k];
        // Inverse-distance weights (paper: "using their distances to the
        // target as the weights").
        let weights: Vec<f64> = neighbours.iter().map(|(d, _)| 1.0 / (d.sqrt() + 1e-6)).collect();
        let wsum: f64 = weights.iter().sum();
        // Impute missing model blocks.
        for model in 0..self.offsets.len() {
            if executed.contains(model) {
                continue;
            }
            let base = self.offsets[model];
            for j in 0..dim {
                let mut acc = 0.0;
                for ((_, idx), w) in neighbours.iter().zip(&weights) {
                    acc += w * self.bank[*idx][base + j];
                }
                row[base + j] = acc / wsum;
            }
        }
        row
    }

    /// Convenience: fill then split back into per-model [`Output`]s so the
    /// stacking aggregator can consume them.
    pub fn fill_outputs(
        &self,
        present: &[(usize, &Output)],
        executed: ModelSet,
        categorical: bool,
    ) -> Vec<Output> {
        let row = self.fill(present, executed);
        let m = self.offsets.len();
        let dim = self.width / m;
        (0..m)
            .map(|model| {
                let base = self.offsets[model];
                let slice = &row[base..base + dim];
                if categorical {
                    // Renormalise imputed probability vectors.
                    let sum: f64 = slice.iter().sum();
                    if sum > 0.0 {
                        Output::Probs(slice.iter().map(|x| x / sum).collect())
                    } else {
                        Output::Probs(vec![1.0 / dim as f64; dim])
                    }
                } else {
                    Output::Scalar(slice[0])
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_models::zoo;
    use schemble_models::{DifficultyDist, SampleGenerator};

    fn fixture() -> (Ensemble, Vec<Sample>, KnnFiller) {
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let history = gen.batch(0, 600);
        let filler = KnnFiller::fit(&ens, &history, 10);
        (ens, history, filler)
    }

    #[test]
    fn filled_row_preserves_observed_values() {
        let (ens, history, filler) = fixture();
        let s = &history[3];
        let outputs = ens.infer_all(s);
        let present = vec![(0usize, &outputs[0])];
        let row = filler.fill(&present, ModelSet::singleton(0));
        assert_eq!(row.len(), 6); // 3 models × 2 classes
        let want = outputs[0].as_vec();
        assert_eq!(&row[0..2], want.as_slice());
    }

    #[test]
    fn imputation_approximates_true_missing_outputs() {
        // Because model errors correlate, observing one model's output should
        // let KNN recover the others better than a blind prior would.
        let (ens, _history, filler) = fixture();
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 99);
        let fresh = gen.batch(10_000, 200);
        let mut err_knn = 0.0;
        let mut err_prior = 0.0;
        for s in &fresh {
            let outputs = ens.infer_all(s);
            let present = vec![(0usize, &outputs[0])];
            let row = filler.fill(&present, ModelSet::singleton(0));
            let truth = outputs[2].as_vec();
            err_knn += (row[4] - truth[0]).abs();
            err_prior += (0.5 - truth[0]).abs();
        }
        assert!(
            err_knn < err_prior,
            "KNN imputation ({err_knn:.1}) should beat the uniform prior ({err_prior:.1})"
        );
    }

    #[test]
    fn fill_outputs_returns_valid_probability_vectors() {
        let (ens, history, filler) = fixture();
        let outputs = ens.infer_all(&history[0]);
        let present = vec![(1usize, &outputs[1])];
        let filled = filler.fill_outputs(&present, ModelSet::singleton(1), true);
        assert_eq!(filled.len(), 3);
        for out in &filled {
            match out {
                Output::Probs(p) => {
                    assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                    assert!(p.iter().all(|&x| x >= 0.0));
                }
                Output::Scalar(_) => panic!("expected categorical"),
            }
        }
    }

    #[test]
    fn robust_to_k_choice() {
        // Fig. 20b: accuracy is stable across k ∈ [1, 100].
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let history = gen.batch(0, 600);
        let fresh = gen.batch(10_000, 150);
        let mut errs = Vec::new();
        for k in [1usize, 10, 100] {
            let filler = KnnFiller::fit(&ens, &history, k);
            let mut err = 0.0;
            for s in &fresh {
                let outputs = ens.infer_all(s);
                let present = vec![(0usize, &outputs[0])];
                let row = filler.fill(&present, ModelSet::singleton(0));
                err += (row[4] - outputs[2].as_vec()[0]).abs();
            }
            errs.push(err / fresh.len() as f64);
        }
        let spread = errs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - errs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.15, "k-sensitivity too high: {errs:?}");
    }

    #[test]
    #[should_panic(expected = "zero observed outputs")]
    fn empty_present_panics() {
        let (_, _, filler) = fixture();
        filler.fill(&[], ModelSet::EMPTY);
    }
}
