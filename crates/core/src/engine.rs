//! Backend-agnostic pipeline engines.
//!
//! An engine is the pure *decision* half of a serving pipeline — admission,
//! scoring, planning, dispatch order, result assembly — expressed as a state
//! machine over [`BackendEvent`]s. The *execution* half (where tasks run,
//! how time passes) lives behind [`ExecutionBackend`]. The DES drivers in
//! [`crate::pipeline`] and the wall-clock runtime in `schemble-serve` both
//! drive these same engines, which is what makes their admission decisions
//! comparable: same events in, same decisions out, regardless of substrate.
//!
//! Two engines cover the paper's pipeline families:
//!
//! * [`SchembleEngine`] — the buffered, re-planning pipeline of Fig. 3
//!   (query buffer, discrepancy predictor, DP scheduler, EDF
//!   dispatch-on-idle, deadline expiry).
//! * [`ImmediateEngine`] — the immediate-selection family of Fig. 2a–d
//!   (Original / Static / DES / Gating): a [`SelectionPolicy`] picks a
//!   subset at arrival and tasks join per-instance FIFO queues at once.

use crate::backend::{BackendEvent, ExecutionBackend, ExecutorUsage};
use crate::pipeline::eval::evaluate;
use crate::pipeline::immediate::{Deployment, SelectionPolicy};
use crate::pipeline::schemble::SchembleConfig;
use crate::pipeline::{AdmissionMode, ResultAssembler};
use crate::scheduler::anytime::gain_order_into;
use crate::scheduler::{BufferedQuery, SchedScratch, ScheduleInput, SchedulePlan};
use schemble_data::{Query, Workload};
use schemble_metrics::{ModelUsage, QueryOutcome, QueryRecord, RunSummary};
use schemble_models::{Aggregator, Ensemble, ModelSet, Output, Sample};
use schemble_sim::{SimDuration, SimTime};
use schemble_trace::{score_fixed_point, AdmissionVerdict, TraceEvent, TraceSink};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Live query-outcome counters, maintained incrementally by every engine.
///
/// Conservation invariant (the serve runtime's property tests check it):
/// `submitted + stolen_in == completed + degraded + rejected + expired +
/// stolen_out + open`, with `open` reaching zero after
/// [`PipelineEngine::drain`]. Without work stealing both `stolen_*` terms
/// are zero and this is the familiar `submitted == terminals + open`; with
/// it, summing per-shard stats cancels the transfer terms (every release is
/// someone's adoption), so the *global* invariant is unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Arrival events handled.
    pub submitted: u64,
    /// Queries completed with an assembled result.
    pub completed: u64,
    /// Queries answered from a partial ensemble after task failures or a
    /// deadline cut the planned set short.
    pub degraded: u64,
    /// Queries refused at arrival by admission control.
    pub rejected: u64,
    /// Queries dropped after admission (deadline or end-of-trace).
    pub expired: u64,
    /// Task executions that failed (transient fault, timeout or crash).
    /// Not part of conservation: a failure may be retried.
    pub tasks_failed: u64,
    /// Failed tasks that were re-dispatched.
    pub tasks_retried: u64,
    /// Planned tasks quit before completing because the anytime policy
    /// judged the partial ensemble already confident enough. Not part of
    /// conservation: the query itself still completes.
    pub tasks_saved: u64,
    /// Queries adopted from another shard engine by work stealing.
    pub stolen_in: u64,
    /// Queries released to another shard engine by work stealing.
    pub stolen_out: u64,
}

impl EngineStats {
    /// Queries owned by this engine but not yet decided.
    pub fn open(&self) -> u64 {
        (self.submitted + self.stolen_in)
            - (self.completed + self.degraded + self.rejected + self.expired + self.stolen_out)
    }

    /// Adds `other`'s counts to `self`. Addition commutes, so folding any
    /// number of per-shard stats in any order gives the same global stats.
    pub fn merge(&mut self, other: &EngineStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.degraded += other.degraded;
        self.rejected += other.rejected;
        self.expired += other.expired;
        self.tasks_failed += other.tasks_failed;
        self.tasks_retried += other.tasks_retried;
        self.tasks_saved += other.tasks_saved;
        self.stolen_in += other.stolen_in;
        self.stolen_out += other.stolen_out;
    }
}

/// A query released by one shard engine for adoption by another, carrying
/// the admission state that must survive the transfer. The thief re-plans
/// the query but never re-scores it: the discrepancy prediction is a pure
/// function of the sample, so carrying the score keeps the transfer free
/// *and* keeps scoring byte-identical to a run without stealing.
#[derive(Debug, Clone)]
pub struct StolenQuery {
    /// The query itself, keeping its *original* arrival time and deadline —
    /// a transfer buys capacity, never extra slack.
    pub query: Query,
    /// Predicted discrepancy score, already clamped to `[0, 1]`.
    pub score: f64,
    /// Difficulty bin of `score` under the utility profile.
    pub bin: u8,
}

/// Where a stolen query came from; stamped into the thief's
/// [`TraceEvent::QueryStolen`] so lineage survives into every export.
#[derive(Debug, Clone, Copy)]
pub struct StealLineage {
    /// Steal-epoch index (0-based) at whose boundary the transfer happened.
    pub epoch: u32,
    /// Shard the query was released from.
    pub victim: u16,
    /// Shard that adopted it.
    pub thief: u16,
    /// Victim's eligible-queue depth in the epoch snapshot.
    pub victim_depth: u32,
    /// Thief's eligible-queue depth in the epoch snapshot.
    pub thief_depth: u32,
}

/// Retry and degradation knobs for fault-tolerant runs.
///
/// Engines handle [`BackendEvent::TaskFailed`] with
/// [`FailurePolicy::default`] even when a config carries `None`, so a fault
/// injected into any run is absorbed rather than fatal. But only an explicit
/// policy opts into *deadline-aware degradation* (answering with the outputs
/// in hand the moment the deadline arrives); with `None` and no faults, every
/// decision is identical to a build without this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailurePolicy {
    /// Re-dispatch a failed task at most this many times before its model
    /// is dropped from the query's set.
    pub max_retries: u32,
    /// Base retry delay; retry attempt `a` waits `backoff * 2^(a-1)`.
    pub backoff: SimDuration,
}

impl Default for FailurePolicy {
    fn default() -> Self {
        Self { max_retries: 2, backoff: SimDuration::from_millis(2) }
    }
}

/// Early-exit ("anytime") execution policy.
///
/// With an active policy, [`SchembleEngine`] re-evaluates a query's partial
/// ensemble after every assembled output. When the outputs in hand are
/// already confident — the running vote is mathematically decided, or the
/// produced subset's profiled utility is within `1 - confidence_threshold`
/// of the full planned set's — the remaining planned tasks are quit:
/// running ones are cancelled through [`ExecutionBackend::cancel_task`],
/// unstarted ones are shed from the set, and the query completes
/// immediately with the partial answer.
///
/// A threshold above `1.0` disables every quit; such a run is byte-identical
/// to one without the policy (records, audit and metrics — pinned by
/// proptest), which is what lets the flag ship default-off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnytimePolicy {
    /// Quit the rest of a plan once the produced subset's profiled utility
    /// is within `1 - confidence_threshold` of the full planned set's —
    /// i.e. a quit gives up at most `1 - C` of profiled accuracy on that
    /// query. At exactly `1.0` only lossless quits fire (a decided vote,
    /// or a subset the profile scores level with the full plan); above
    /// `1.0` the policy is inert.
    pub confidence_threshold: f64,
}

impl Default for AnytimePolicy {
    fn default() -> Self {
        Self { confidence_threshold: 0.98 }
    }
}

impl AnytimePolicy {
    /// Whether the policy can ever quit a task.
    pub fn active(&self) -> bool {
        self.confidence_threshold <= 1.0
    }
}

/// A pipeline's decision logic as a state machine over backend events.
///
/// The driver (DES loop or serving runtime) owns the backend, feeds every
/// event through [`PipelineEngine::handle`], and finally collects records.
pub trait PipelineEngine {
    /// Processes one event and issues any resulting backend actions.
    fn handle(&mut self, event: BackendEvent, now: SimTime, backend: &mut dyn ExecutionBackend);

    /// Queries admitted but not yet completed or expired.
    fn open_count(&self) -> usize;

    /// The next instant at which the engine needs a [`BackendEvent::Wake`]
    /// even if nothing completes or arrives (pending plan, predictor
    /// completion, earliest deadline). `None` when no timer is needed.
    fn next_wake_hint(&self, now: SimTime) -> Option<SimTime>;

    /// Closes out queries that can no longer make progress (end of trace,
    /// no running tasks). Their records keep the default `Missed` outcome.
    fn drain(&mut self, now: SimTime);

    /// Takes the per-query records accumulated so far.
    fn take_records(&mut self) -> Vec<QueryRecord>;

    /// Current outcome counters.
    fn stats(&self) -> EngineStats;

    /// Drains `(query id, latency secs)` pairs of queries completed since
    /// the last call — the runtime feeds these into its latency histogram.
    fn take_completions(&mut self) -> Vec<(u64, f64)>;

    /// This engine's admitted-but-unplanned backlog as
    /// `(depth, predicted_us)`: how many steal-eligible queries it holds
    /// (admitted, scored, no task started) and the sum of their predicted
    /// service demands in integer microseconds. Pure and side-effect free —
    /// the steal coordinator snapshots every shard with it at each epoch
    /// boundary. Engines that cannot release work report `(0, 0)`.
    fn steal_backlog(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Releases up to `count` steal-eligible queries — latest deadlines
    /// first, so the victim keeps the work it is most likely to finish in
    /// time — removing them from this engine entirely. Default: releases
    /// nothing (paired with the `(0, 0)` backlog above).
    fn release_for_steal(&mut self, count: usize, now: SimTime) -> Vec<StolenQuery> {
        let _ = (count, now);
        Vec::new()
    }

    /// Adopts a query released by another engine, assigning it a fresh
    /// local id (returned). The caller re-plans afterwards via
    /// [`PipelineEngine::on_rebalanced`]. Engines reporting a `(0, 0)`
    /// backlog are never paired as thieves, so the default is unreachable
    /// under the coordinator's protocol.
    fn adopt_stolen(&mut self, stolen: StolenQuery, lineage: StealLineage, now: SimTime) -> u64 {
        let _ = (stolen, lineage, now);
        unreachable!("this engine does not participate in work stealing")
    }

    /// Re-plans after an epoch rebalance changed this engine's buffer
    /// (released and/or adopted queries). Called at most once per engine
    /// per epoch, and only when it transferred at least one query — a
    /// zero-transfer epoch leaves the engine byte-untouched.
    fn on_rebalanced(&mut self, now: SimTime, backend: &mut dyn ExecutionBackend) {
        let _ = (now, backend);
    }
}

fn blank_records(workload: &Workload) -> Vec<QueryRecord> {
    workload
        .queries
        .iter()
        .map(|q| QueryRecord {
            id: q.id,
            arrival: q.arrival,
            deadline: q.deadline,
            completion: None,
            outcome: QueryOutcome::Missed,
            models_used: 0,
        })
        .collect()
}

/// Per-query failure bookkeeping. Vectors stay empty (no allocation) until
/// the query's first task failure.
#[derive(Debug, Default)]
struct FaultBook {
    /// Failures seen per executor.
    attempts: Vec<u8>,
    /// Pending backoff deadline per executor; gates re-dispatch.
    retry_at: Vec<Option<SimTime>>,
    /// The query lost at least one planned model to faults or its deadline.
    degraded: bool,
}

impl FaultBook {
    fn ensure(&mut self, m: usize) {
        if self.attempts.len() < m {
            self.attempts.resize(m, 0);
            self.retry_at.resize(m, None);
        }
    }

    fn attempts(&self, k: usize) -> u8 {
        self.attempts.get(k).copied().unwrap_or(0)
    }

    fn retry_pending(&self, k: usize) -> Option<SimTime> {
        self.retry_at.get(k).copied().flatten()
    }
}

#[derive(Debug)]
struct QState {
    deadline: SimTime,
    arrival: SimTime,
    /// Earliest dispatch (arrival + predictor latency).
    ready_at: SimTime,
    score: f64,
    utilities: Vec<f64>,
    set: ModelSet,
    started: ModelSet,
    /// Set once any task starts: the model set is committed and the query
    /// never re-enters planning, even if failures empty `started` again.
    frozen: bool,
    outputs: Vec<(usize, Output)>,
    closed: bool,
    fault: FaultBook,
}

/// The executor set that produced `outputs`.
fn produced_set(outputs: &[(usize, Output)]) -> ModelSet {
    outputs.iter().fold(ModelSet::EMPTY, |s, (k, _)| s.with(*k))
}

/// The query behind local id `id`: an adopted (stolen) query if one exists,
/// otherwise the workload query at that index. A free function (not a
/// method) so callers can keep a disjoint `&mut` borrow of other engine
/// fields while holding the returned reference.
fn query_of<'q>(workload: &'q Workload, adopted: &'q HashMap<u64, Query>, id: u64) -> &'q Query {
    adopted.get(&id).unwrap_or_else(|| &workload.queries[id as usize])
}

/// The Schemble pipeline (Fig. 3) as a backend-agnostic engine.
///
/// Executor indices must equal base-model indices (identity deployment) —
/// the layout Schemble runs on in the paper.
pub struct SchembleEngine<'a> {
    ensemble: &'a Ensemble,
    config: &'a SchembleConfig,
    workload: &'a Workload,
    open: HashMap<u64, QState>,
    /// Queries adopted from other shards by work stealing, keyed by the
    /// fresh local id assigned at adoption (`>= workload.len()`, since the
    /// borrowed workload itself is immutable). [`query_of`] makes lookups
    /// transparent, so the rest of the engine never cares where a query
    /// came from.
    adopted: HashMap<u64, Query>,
    plan_ready_at: SimTime,
    records: Vec<QueryRecord>,
    stats: EngineStats,
    completions: Vec<(u64, f64)>,
    trace: Arc<TraceSink>,
    /// Set once any fault event arrives; enables tolerant bookkeeping (late
    /// completions, drain-time degradation) even without an explicit policy.
    faults_seen: bool,
    /// Scheduler working memory, reused across every re-plan of the run —
    /// steady-state planning allocates nothing (see `scheduler::scratch`).
    sched_scratch: SchedScratch,
    /// Reusable plan output buffer, paired with `sched_scratch`.
    plan_buf: SchedulePlan,
    /// Predicted discrepancy scores, filled a batch at a time
    /// ([`SchembleConfig::score_batch`]): one matrix forward over the next
    /// chunk of arrivals instead of a per-query MLP forward. Scores are
    /// bit-identical to per-query scoring (pinned by test), so batching
    /// never changes a decision.
    score_cache: Vec<f64>,
    score_ready: Vec<bool>,
    /// Availability scratch, refilled via
    /// [`ExecutionBackend::availability_into`] each re-plan and recovered
    /// from the `ScheduleInput` afterwards — planning allocates no fresh
    /// availability vector even when batching multiplies the queries.
    avail_buf: Vec<SimTime>,
    /// Second availability scratch for the raw (unadjusted) lookups the
    /// ForceAll fallback and explainability paths need.
    avail_raw: Vec<SimTime>,
}

impl<'a> SchembleEngine<'a> {
    /// An engine over `workload`, with no queries admitted yet.
    pub fn new(ensemble: &'a Ensemble, config: &'a SchembleConfig, workload: &'a Workload) -> Self {
        Self {
            ensemble,
            config,
            workload,
            open: HashMap::new(),
            adopted: HashMap::new(),
            plan_ready_at: SimTime::ZERO,
            records: blank_records(workload),
            stats: EngineStats::default(),
            completions: Vec::new(),
            trace: TraceSink::disabled(),
            faults_seen: false,
            sched_scratch: SchedScratch::new(),
            plan_buf: SchedulePlan::empty(0),
            score_cache: vec![0.0; workload.len()],
            score_ready: vec![false; workload.len()],
            avail_buf: Vec::new(),
            avail_raw: Vec::new(),
        }
    }

    /// Whether cross-query batching is on (an inactive config is `None`).
    fn batching(&self) -> Option<schemble_sim::BatchConfig> {
        self.config.batching.filter(|b| b.active())
    }

    /// The predicted discrepancy score of workload query `i`, served from
    /// the batch cache (scoring the next `score_batch` arrivals in one
    /// matrix forward on a miss). Scoring is pure and deterministic per
    /// sample, so prefetching ahead of arrival order changes no score.
    fn predicted_score(&mut self, i: usize) -> f64 {
        if !self.score_ready[i] {
            let end = (i + self.config.score_batch.max(1)).min(self.workload.queries.len());
            let samples: Vec<&Sample> =
                self.workload.queries[i..end].iter().map(|q| &q.sample).collect();
            let scores = self.config.scorer.score_batch(&samples, self.ensemble);
            for (off, s) in scores.into_iter().enumerate() {
                self.score_cache[i + off] = s;
                self.score_ready[i + off] = true;
            }
        }
        self.score_cache[i]
    }

    /// Fault handling is live: either an explicit policy was configured or a
    /// fault event has already been observed.
    fn fault_mode(&self) -> bool {
        self.faults_seen || self.config.failure.is_some()
    }

    /// Emits decision events into `trace` (and plan timings into its
    /// [`PlanningProfile`](schemble_trace::PlanningProfile)). Tracing never
    /// alters a decision: events carry only data the engine computed anyway.
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// Consumes the engine, aggregating backend usage into a [`RunSummary`].
    pub fn into_summary(self, usage: Vec<ExecutorUsage>) -> RunSummary {
        for (id, state) in &self.open {
            debug_assert!(state.started.is_empty(), "query {id} drained with running tasks");
        }
        let models = (0..self.ensemble.m())
            .map(|k| ModelUsage {
                name: self.ensemble.models[k].name.clone(),
                busy_secs: usage[k].busy_secs,
                tasks: usage[k].tasks,
                instances: 1,
            })
            .collect();
        RunSummary::new(self.records).with_usage(models)
    }

    fn on_arrival(&mut self, i: usize, now: SimTime, backend: &mut dyn ExecutionBackend) {
        let q = &self.workload.queries[i];
        self.stats.submitted += 1;
        self.trace.emit(TraceEvent::Arrival { t: now, query: q.id, deadline: q.deadline });
        // Fast path (§VIII): empty buffer + an idle model ⇒ skip
        // prediction and scheduling, run the fastest idle model now.
        if self.config.fast_path && self.open.is_empty() && backend.any_idle() {
            let k = backend
                .idle_executors()
                .into_iter()
                .min_by_key(|&k| self.ensemble.latency(k).planned())
                .expect("an idle server exists");
            self.trace.emit(TraceEvent::Admission {
                t: now,
                query: q.id,
                verdict: AdmissionVerdict::FastPath { executor: k as u16 },
            });
            if self.batching().is_some() {
                // A batching backend may hold an open batch on an idle
                // executor; joining it is the fast path's batched analogue.
                backend.submit_batch(k, q.id, now);
            } else {
                backend.start_task(k, q.id, now);
            }
            self.open.insert(
                q.id,
                QState {
                    deadline: q.deadline,
                    arrival: q.arrival,
                    ready_at: q.arrival,
                    score: 0.0,
                    utilities: self.config.profile.utility_vector(0.0),
                    set: ModelSet::singleton(k),
                    started: ModelSet::singleton(k),
                    frozen: true,
                    outputs: Vec::new(),
                    closed: false,
                    fault: FaultBook::default(),
                },
            );
            return;
        }
        self.trace.emit(TraceEvent::Admission {
            t: now,
            query: q.id,
            verdict: AdmissionVerdict::Buffered,
        });
        let score = self.predicted_score(i).clamp(0.0, 1.0);
        let q = &self.workload.queries[i];
        let utilities = self.config.profile.utility_vector(score);
        self.trace.emit(TraceEvent::Scored {
            t: now,
            query: q.id,
            bin: self.config.profile.bin_of(score) as u8,
            score_fp: score_fixed_point(score),
        });
        self.open.insert(
            q.id,
            QState {
                deadline: q.deadline,
                arrival: q.arrival,
                ready_at: q.arrival + self.config.predictor_latency,
                score,
                utilities,
                set: ModelSet::EMPTY,
                started: ModelSet::EMPTY,
                frozen: false,
                outputs: Vec::new(),
                closed: false,
                fault: FaultBook::default(),
            },
        );
        // The query only becomes dispatchable once its score
        // prediction lands; make sure something fires then.
        let ready_at = q.arrival + self.config.predictor_latency;
        backend.request_wake(ready_at.max(now));
        self.expire(now);
        self.replan(now, backend);
        self.schedule_dispatch(now, backend);
    }

    fn on_task_done(
        &mut self,
        executor: usize,
        query: u64,
        now: SimTime,
        backend: &mut dyn ExecutionBackend,
    ) {
        {
            let q = query_of(self.workload, &self.adopted, query);
            let Some(state) = self.open.get_mut(&query) else {
                // Only deadline-aware degradation closes a query while a
                // task of its is still running; the late output is dropped.
                assert!(
                    self.faults_seen || self.config.failure.is_some(),
                    "completion for unknown query {query}"
                );
                return;
            };
            state.outputs.push((
                executor,
                self.ensemble.models[executor].infer(&q.sample, &self.ensemble.spec),
            ));
        }
        self.anytime_quit(query, now, backend);
        self.finish_if_complete(query, now);
        self.expire(now);
        self.replan(now, backend);
        self.schedule_dispatch(now, backend);
    }

    /// A task execution failed (transient fault, timeout, or executor
    /// crash). Retries it after exponential backoff while the budget and
    /// deadline allow; otherwise drops the model from the query's set and
    /// degrades ("quit when you can": a partial answer on time beats a full
    /// ensemble late).
    fn on_task_failed(
        &mut self,
        executor: usize,
        query: u64,
        now: SimTime,
        backend: &mut dyn ExecutionBackend,
    ) {
        self.faults_seen = true;
        self.stats.tasks_failed += 1;
        let policy = self.config.failure.unwrap_or_default();
        let m = self.ensemble.m();
        if let Some(state) = self.open.get_mut(&query) {
            state.fault.ensure(m);
            state.started = state.started.without(executor);
            state.fault.attempts[executor] = state.fault.attempts[executor].saturating_add(1);
            let attempts = u32::from(state.fault.attempts[executor]);
            let worth_retrying =
                self.config.admission == AdmissionMode::ForceAll || state.deadline > now;
            if attempts <= policy.max_retries && worth_retrying {
                let delay = SimDuration::from_micros(
                    policy.backoff.as_micros().saturating_mul(1u64 << (attempts - 1).min(16)),
                );
                state.fault.retry_at[executor] = Some(now + delay);
                backend.request_wake(now + delay);
            } else {
                state.set = state.set.without(executor);
                state.fault.retry_at[executor] = None;
                state.fault.degraded = true;
                if state.set.is_empty() {
                    // Every planned model failed permanently: expire.
                    self.open.remove(&query);
                    self.records[query as usize].models_used = 0;
                    self.stats.expired += 1;
                    self.trace.emit(TraceEvent::QueryExpired { t: now, query });
                } else {
                    self.finish_if_complete(query, now);
                }
            }
        }
        // (A crash may also kill a task of an already-closed query; the
        // failure is counted above and otherwise ignored.)
        self.expire(now);
        self.replan(now, backend);
        self.schedule_dispatch(now, backend);
    }

    /// Re-plans the unstarted buffer; updates when the new plan takes effect.
    fn replan(&mut self, now: SimTime, backend: &mut dyn ExecutionBackend) {
        let mut ids: Vec<u64> =
            self.open.iter().filter(|(_, s)| !s.frozen && !s.closed).map(|(&id, _)| id).collect();
        if ids.is_empty() {
            self.plan_ready_at = self.plan_ready_at.max(now);
            return;
        }
        ids.sort_unstable();
        // Availability must account for *committed* work: tasks of frozen
        // (already-started) queries that have not begun executing yet will
        // occupy their models before anything planned now — without this, the
        // planner overcommits and every plan completes late.
        backend.availability_into(now, &mut self.avail_buf);
        let mut availability = std::mem::take(&mut self.avail_buf);
        for state in self.open.values() {
            if state.closed || !state.frozen {
                continue;
            }
            for k in state.set.iter() {
                if !state.started.contains(k) {
                    availability[k] += self.ensemble.latency(k).planned();
                }
            }
        }
        let queries: Vec<BufferedQuery> = ids
            .iter()
            .map(|id| {
                let s = &self.open[id];
                BufferedQuery {
                    id: *id,
                    arrival: s.arrival,
                    deadline: s.deadline,
                    utilities: s.utilities.clone(),
                    score: s.score,
                }
            })
            .collect();
        let input = ScheduleInput {
            now,
            availability,
            latencies: self.ensemble.planned_latencies(),
            queries,
        };
        let config = self.config;
        let plan_t0 = Instant::now();
        config.scheduler.plan_into(&input, &mut self.sched_scratch, &mut self.plan_buf);
        self.trace.planning.record(self.plan_buf.work, plan_t0.elapsed());
        // Explainability bookkeeping is gated on `observing()` so the silent
        // hot path pays nothing; nothing below feeds back into a decision.
        let observing = self.trace.observing();
        let prev_sets: Vec<ModelSet> =
            if observing { ids.iter().map(|id| self.open[id].set).collect() } else { Vec::new() };
        for (pos, id) in ids.iter().enumerate() {
            let set = self.plan_buf.assignments[pos];
            self.open.get_mut(id).expect("present").set = set;
        }
        // Forced mode: queries the plan abandoned but that must run get the
        // least-loaded single model.
        if self.config.admission == AdmissionMode::ForceAll {
            backend.availability_into(now, &mut self.avail_raw);
            for id in &ids {
                let s = self.open.get_mut(id).expect("present");
                if s.set.is_empty() {
                    let best = (0..self.ensemble.m())
                        .min_by_key(|&k| self.avail_raw[k] + self.ensemble.latency(k).planned())
                        .expect("non-empty ensemble");
                    s.set = ModelSet::singleton(best);
                }
            }
        }
        let cost = SimDuration::from_micros(
            (self.config.sched_ns_per_unit * self.plan_buf.work as f64 / 1000.0).round() as u64,
        ) + self.config.sched_base_overhead;
        self.plan_ready_at = now + cost;
        self.trace.emit(TraceEvent::Plan {
            t: now,
            buffer: ids.len() as u32,
            scheduled: self.plan_buf.assignments.iter().filter(|s| !s.is_empty()).count() as u32,
            work: self.plan_buf.work,
            cost,
        });
        if observing {
            // One `PlanAssign` per query whose assignment this round changed,
            // carrying the plan's own completion estimate (or, for ForceAll
            // fallback singletons the plan left out, an availability-based
            // one). Emitted in sorted-id order after the `Plan` event so the
            // stream stays deterministic.
            let completions = input.completions(&self.plan_buf);
            backend.availability_into(now, &mut self.avail_raw);
            for (pos, id) in ids.iter().enumerate() {
                let set = self.open[id].set;
                if set == prev_sets[pos] {
                    continue;
                }
                let predicted_finish = completions[pos].unwrap_or_else(|| {
                    let mut finish = SimTime::ZERO;
                    for k in set.iter() {
                        let done = self.avail_raw[k].max(now) + self.ensemble.latency(k).planned();
                        finish = finish.max(done);
                    }
                    finish
                });
                self.trace.emit(TraceEvent::PlanAssign {
                    t: now,
                    query: *id,
                    set: set.0,
                    predicted_finish,
                    frontier: self.plan_buf.frontier,
                });
            }
        }
        // Reclaim the availability vector's capacity for the next re-plan.
        self.avail_buf = input.availability;
        self.avail_buf.clear();
    }

    /// Starts tasks on idle executors per the current plan, in EDF order.
    fn dispatch(&mut self, now: SimTime, backend: &mut dyn ExecutionBackend) {
        // EDF order over open queries.
        let mut ids: Vec<u64> = self.open.keys().copied().collect();
        ids.sort_by_key(|id| (self.open[id].deadline, *id));
        let batching = self.batching();
        for k in backend.idle_executors() {
            // With batching active an idle executor accepts up to
            // `batch_max` members (counting an already-open batch); without
            // it, exactly one task as before.
            let mut room = match batching {
                Some(cfg) => cfg.batch_max.saturating_sub(backend.open_batch_len(k)),
                None => 1,
            };
            for id in &ids {
                if room == 0 {
                    break;
                }
                let state = self.open.get_mut(id).expect("present");
                if state.closed
                    || !state.set.contains(k)
                    || state.started.contains(k)
                    || state.ready_at > now
                    || state.fault.retry_pending(k).is_some_and(|t| t > now)
                {
                    continue;
                }
                if batching.is_some() {
                    // Joining a non-empty open batch delays launch (window)
                    // and dilates service (batch curve); only coalesce when
                    // the quoted joined finish still meets the deadline.
                    // ForceAll queries run regardless, mirroring admission.
                    if self.config.admission == AdmissionMode::Reject
                        && backend.open_batch_len(k) > 0
                    {
                        let finish =
                            backend.available_at(k, now) + self.ensemble.latency(k).planned();
                        if finish > state.deadline {
                            continue;
                        }
                    }
                    backend.submit_batch(k, *id, now);
                } else {
                    backend.start_task(k, *id, now);
                }
                state.started = state.started.with(k);
                state.frozen = true;
                let attempt = state.fault.attempts(k);
                if attempt > 0 {
                    if let Some(slot) = state.fault.retry_at.get_mut(k) {
                        *slot = None;
                    }
                    self.stats.tasks_retried += 1;
                    self.trace.emit(TraceEvent::TaskRetried {
                        t: now,
                        query: *id,
                        executor: k as u16,
                        attempt,
                    });
                }
                room -= 1;
            }
        }
    }

    /// Whether the partial vote is already mathematically decided: under
    /// direct majority voting over a categorical task, the leading class
    /// wins no matter where the remaining votes land. Such a quit is
    /// lossless — the assembled class equals the full plan's.
    fn vote_decided(&self, state: &QState) -> bool {
        if !matches!(self.config.assembler, ResultAssembler::Direct)
            || !matches!(self.ensemble.aggregator, Aggregator::Voting)
        {
            return false;
        }
        let Some(classes) = self.ensemble.spec.num_classes() else { return false };
        let mut votes = vec![0usize; classes];
        for (_, o) in &state.outputs {
            votes[o.predicted_class()] += 1;
        }
        let remaining = state.set.len() - state.outputs.len();
        let leader = votes.iter().copied().max().unwrap_or(0);
        // Strict margin: the leader must beat every other class even if all
        // remaining votes land on it (ties count against the leader, so
        // aggregator tie-breaking never comes into play).
        votes.iter().filter(|&&v| v == leader).count() == 1
            && votes.iter().all(|&v| v == leader || leader > v + remaining)
    }

    /// Anytime early exit: after a new output lands, quits the rest of the
    /// query's plan if the partial ensemble is already confident enough —
    /// running tasks are cancelled through the backend, unstarted ones shed
    /// from the set — so [`Self::finish_if_complete`] closes the query with
    /// the outputs in hand. In Reject mode a kept task whose predicted
    /// latency no longer fits the deadline margin is shed too (and the
    /// answer degrades, matching the expiry path's semantics).
    ///
    /// With no policy, or an inactive threshold, this returns before
    /// touching any state: every decision stays byte-identical to an engine
    /// without the feature (pinned by proptest).
    fn anytime_quit(&mut self, query: u64, now: SimTime, backend: &mut dyn ExecutionBackend) {
        let Some(policy) = self.config.anytime else { return };
        if !policy.active() {
            return;
        }
        let Some(state) = self.open.get(&query) else { return };
        if state.closed || state.outputs.is_empty() || state.outputs.len() >= state.set.len() {
            return;
        }
        let produced = produced_set(&state.outputs);
        let remaining: Vec<usize> = state.set.iter().filter(|&k| !produced.contains(k)).collect();
        let remaining_set = remaining.iter().fold(ModelSet::EMPTY, |s, &k| s.with(k));
        // Confidence is relative to the plan the scheduler chose: the quit
        // is taken once the produced subset's profiled utility is within
        // `1 - C` of the full planned set's, so a quit gives up at most
        // `1 - C` of profiled accuracy on this query. (An absolute floor —
        // "utility >= C" — looked natural but quits cheap plans far below
        // what they would have delivered; the marginal form bounds the
        // loss instead.) A mathematically decided vote is confidence 1.0.
        let slack = 1.0 - policy.confidence_threshold;
        let target = state.utilities[state.set.0 as usize] - slack;
        let confident = self.vote_decided(state) || state.utilities[produced.0 as usize] >= target;
        let mut keep = ModelSet::EMPTY;
        if !confident {
            // Not confident yet: keep the cheapest prefix — in marginal
            // utility-per-planned-latency order — that reaches the target,
            // shedding the near-zero-marginal tail. The walk reaches the
            // target at the latest on the last task (acc is the full set
            // there), so at worst everything is kept and the plan runs to
            // completion as planned.
            let latencies = self.ensemble.planned_latencies();
            let mut order = Vec::with_capacity(remaining.len());
            gain_order_into(&state.utilities, &latencies, produced, remaining_set, &mut order);
            let mut acc = produced;
            for &k in &order {
                acc = acc.with(k);
                keep = keep.with(k);
                if state.utilities[acc.0 as usize] >= target {
                    break;
                }
            }
        }
        let mut deadline_cut = false;
        if self.config.admission == AdmissionMode::Reject {
            // Deadline guard: a kept but unstarted task whose predicted
            // latency exceeds the remaining margin can only make the answer
            // late — shed it now instead of degrading at the deadline.
            // Running tasks are left to the regular expiry path.
            for &k in &remaining {
                if keep.contains(k)
                    && !state.started.contains(k)
                    && now + self.ensemble.latency(k).planned() > state.deadline
                {
                    keep = keep.without(k);
                    deadline_cut = true;
                }
            }
        }
        let shed: Vec<usize> = remaining.into_iter().filter(|&k| !keep.contains(k)).collect();
        if shed.is_empty() {
            return;
        }
        let mut saved = 0u32;
        for k in shed {
            let state = self.open.get_mut(&query).expect("present");
            if state.started.contains(k) {
                // Running: cancel through the backend. A refusal means a
                // crash got there first and its `TaskFailed` is already on
                // the way — leave that bookkeeping to the failure path.
                if !backend.cancel_task(k, query, now) {
                    continue;
                }
                state.started = state.started.without(k);
            }
            state.set = state.set.without(k);
            if let Some(slot) = state.fault.retry_at.get_mut(k) {
                *slot = None;
            }
            saved += 1;
            self.trace.emit(TraceEvent::TaskQuit { t: now, query, executor: k as u16 });
        }
        if saved == 0 {
            return;
        }
        self.stats.tasks_saved += u64::from(saved);
        if deadline_cut {
            // A deadline-driven cut answers short of the plan for time, not
            // confidence — that is a degradation, like the expiry path.
            self.open.get_mut(&query).expect("present").fault.degraded = true;
        }
        self.trace.emit(TraceEvent::WorkSaved { t: now, query, saved });
    }

    /// Completes a query once outputs for its whole (possibly shrunk) set
    /// have arrived: assembles the result, evaluates it and records it.
    fn finish_if_complete(&mut self, query: u64, now: SimTime) {
        let Some(state) = self.open.get_mut(&query) else { return };
        if state.set.is_empty() || state.outputs.len() != state.set.len() {
            return;
        }
        let q = query_of(self.workload, &self.adopted, query);
        let degraded = state.fault.degraded;
        let mut outputs = std::mem::take(&mut state.outputs);
        outputs.sort_by_key(|(k, _)| *k);
        let result = self.config.assembler.assemble(self.ensemble, &outputs, state.set);
        let (correct, score) = evaluate(self.ensemble, &q.sample, &result);
        self.records[query as usize].completion = Some(now);
        self.records[query as usize].outcome = if degraded {
            QueryOutcome::Degraded { correct, score }
        } else {
            QueryOutcome::Completed { correct, score }
        };
        self.records[query as usize].models_used = state.set.len();
        state.closed = true;
        let set = state.set;
        self.open.remove(&query);
        self.completions.push((query, (now - q.arrival).as_secs_f64()));
        self.trace.emit(TraceEvent::Realized {
            t: now,
            query,
            score_fp: score_fixed_point(score),
            correct,
        });
        if degraded {
            self.stats.degraded += 1;
            self.trace.emit(TraceEvent::DegradedAnswer { t: now, query, set: set.0 });
        } else {
            self.stats.completed += 1;
            self.trace.emit(TraceEvent::QueryDone { t: now, query, set: set.0 });
        }
    }

    /// Deadline housekeeping (Reject mode only; ForceAll keeps everything):
    /// unstarted expired queries are dropped, and already-started expired
    /// queries stop scheduling *further* tasks (their set shrinks to what
    /// has started — a late result is a miss either way, so the remaining
    /// capacity goes to queries that can still make it).
    fn expire(&mut self, now: SimTime) {
        if self.config.admission == AdmissionMode::ForceAll {
            return;
        }
        // Sorted so the emitted trace is independent of hash-map order.
        let mut expired: Vec<u64> = self
            .open
            .iter()
            .filter(|(_, s)| s.started.is_empty() && s.deadline < now)
            .map(|(&id, _)| id)
            .collect();
        expired.sort_unstable();
        for id in expired {
            self.open.remove(&id);
            // Record already defaults to Missed.
            self.records[id as usize].models_used = 0;
            self.stats.expired += 1;
            self.trace.emit(TraceEvent::QueryExpired { t: now, query: id });
        }
        let mut late_started: Vec<u64> = self
            .open
            .iter()
            .filter(|(_, s)| !s.started.is_empty() && s.deadline < now)
            .map(|(&id, _)| id)
            .collect();
        late_started.sort_unstable();
        for id in late_started {
            let state = self.open.get_mut(&id).expect("present");
            if self.config.failure.is_some() && !state.outputs.is_empty() {
                // Deadline-aware degradation: answer *now* from the outputs
                // in hand instead of waiting for still-running tasks.
                let produced = produced_set(&state.outputs);
                if state.set != produced {
                    state.fault.degraded = true;
                }
                state.set = produced;
                self.finish_if_complete(id, now);
            } else if state.set != state.started {
                state.set = state.started;
                self.finish_if_complete(id, now);
            }
        }
    }

    /// Ensures a wake-up fires when a pending plan becomes effective.
    fn schedule_dispatch(&mut self, now: SimTime, backend: &mut dyn ExecutionBackend) {
        if self.plan_ready_at > now {
            backend.request_wake(self.plan_ready_at);
        }
    }

    /// Predicted service demand of one steal-eligible query in integer
    /// microseconds: the summed planned latencies of its assigned set, or —
    /// when no plan has touched it yet — the cheapest single model, the
    /// least any admitted query will cost. Integer micros keep the epoch
    /// snapshot (and hence the transfer plan) platform-independent.
    fn predicted_cost_us(&self, state: &QState) -> u64 {
        if state.set.is_empty() {
            (0..self.ensemble.m())
                .map(|k| self.ensemble.latency(k).planned().as_micros())
                .min()
                .unwrap_or(0)
        } else {
            state.set.iter().map(|k| self.ensemble.latency(k).planned().as_micros()).sum()
        }
    }
}

impl PipelineEngine for SchembleEngine<'_> {
    fn handle(&mut self, event: BackendEvent, now: SimTime, backend: &mut dyn ExecutionBackend) {
        match event {
            BackendEvent::Arrival(i) => self.on_arrival(i, now, backend),
            BackendEvent::TaskDone { executor, query } => {
                self.on_task_done(executor, query, now, backend)
            }
            BackendEvent::TaskFailed { executor, query } => {
                self.on_task_failed(executor, query, now, backend)
            }
            BackendEvent::ExecutorDown { .. } | BackendEvent::ExecutorUp { .. } => {
                // Availability changed: re-plan the buffer against it. (The
                // backend traces the transition and surfaces any killed task
                // as its own `TaskFailed`.)
                self.faults_seen = true;
                self.expire(now);
                self.replan(now, backend);
                self.schedule_dispatch(now, backend);
            }
            BackendEvent::Wake => self.expire(now),
        }
        // Dispatch whenever the latest plan is effective.
        if now >= self.plan_ready_at {
            self.dispatch(now, backend);
        }
    }

    fn open_count(&self) -> usize {
        self.open.len()
    }

    fn next_wake_hint(&self, now: SimTime) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        if self.plan_ready_at > now {
            consider(self.plan_ready_at);
        }
        for state in self.open.values() {
            if !state.frozen {
                consider(state.ready_at);
            }
            if self.config.admission == AdmissionMode::Reject && !state.closed {
                consider(state.deadline);
            }
            for t in state.fault.retry_at.iter().flatten() {
                consider(*t);
            }
        }
        next
    }

    fn drain(&mut self, now: SimTime) {
        // End of trace: whatever never started can no longer complete.
        let mut stuck: Vec<u64> =
            self.open.iter().filter(|(_, s)| s.started.is_empty()).map(|(&id, _)| id).collect();
        stuck.sort_unstable();
        for id in stuck {
            self.open.remove(&id);
            self.records[id as usize].models_used = 0;
            self.stats.expired += 1;
            self.trace.emit(TraceEvent::QueryExpired { t: now, query: id });
        }
        if self.fault_mode() {
            // Under faults a query can be wedged with tasks that will never
            // report (e.g. the runtime stopped waiting on a dead worker).
            // Close every remainder: partial outputs become a degraded
            // answer, the rest expire.
            let mut rest: Vec<u64> = self.open.keys().copied().collect();
            rest.sort_unstable();
            for id in rest {
                let state = self.open.get_mut(&id).expect("present");
                if state.outputs.is_empty() {
                    self.open.remove(&id);
                    self.records[id as usize].models_used = 0;
                    self.stats.expired += 1;
                    self.trace.emit(TraceEvent::QueryExpired { t: now, query: id });
                } else {
                    state.set = produced_set(&state.outputs);
                    state.fault.degraded = true;
                    self.finish_if_complete(id, now);
                }
            }
        }
    }

    fn take_records(&mut self) -> Vec<QueryRecord> {
        std::mem::take(&mut self.records)
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn take_completions(&mut self) -> Vec<(u64, f64)> {
        std::mem::take(&mut self.completions)
    }

    fn steal_backlog(&self) -> (u64, u64) {
        let mut depth = 0u64;
        let mut predicted_us = 0u64;
        for state in self.open.values() {
            if state.frozen || state.closed {
                continue;
            }
            depth += 1;
            predicted_us += self.predicted_cost_us(state);
        }
        (depth, predicted_us)
    }

    fn release_for_steal(&mut self, count: usize, now: SimTime) -> Vec<StolenQuery> {
        let _ = now;
        // Latest deadlines go: the victim keeps the queries it is most
        // likely to still finish in time. Sorted by (deadline, id) so the
        // choice is a pure function of engine state.
        let mut ids: Vec<u64> =
            self.open.iter().filter(|(_, s)| !s.frozen && !s.closed).map(|(&id, _)| id).collect();
        ids.sort_unstable_by_key(|id| (self.open[id].deadline, *id));
        let mut out = Vec::with_capacity(count.min(ids.len()));
        for id in ids.into_iter().rev().take(count) {
            let state = self.open.remove(&id).expect("present");
            debug_assert!(
                state.started.is_empty() && state.outputs.is_empty(),
                "released query {id} had running work"
            );
            let query = match self.adopted.remove(&id) {
                Some(q) => q,
                None => self.workload.queries[id as usize].clone(),
            };
            // The released record slot stays `Missed` in this engine; the
            // shard merge drops it in favour of the thief's record.
            let bin = self.config.profile.bin_of(state.score) as u8;
            self.stats.stolen_out += 1;
            out.push(StolenQuery { query, score: state.score, bin });
        }
        out
    }

    fn adopt_stolen(&mut self, stolen: StolenQuery, lineage: StealLineage, now: SimTime) -> u64 {
        // Fresh local id: the workload is borrowed immutably, so adopted
        // queries extend the records vector instead.
        let id = self.records.len() as u64;
        let mut query = stolen.query;
        query.id = id;
        self.records.push(QueryRecord {
            id,
            arrival: query.arrival,
            deadline: query.deadline,
            completion: None,
            outcome: QueryOutcome::Missed,
            models_used: 0,
        });
        let utilities = self.config.profile.utility_vector(stolen.score);
        self.open.insert(
            id,
            QState {
                deadline: query.deadline,
                arrival: query.arrival,
                // Already scored on the victim: dispatchable immediately.
                ready_at: now,
                score: stolen.score,
                utilities,
                set: ModelSet::EMPTY,
                started: ModelSet::EMPTY,
                frozen: false,
                outputs: Vec::new(),
                closed: false,
                fault: FaultBook::default(),
            },
        );
        self.stats.stolen_in += 1;
        self.trace.emit(TraceEvent::QueryStolen {
            t: now,
            query: id,
            epoch: lineage.epoch,
            victim: lineage.victim,
            thief: lineage.thief,
            victim_depth: lineage.victim_depth,
            thief_depth: lineage.thief_depth,
            arrival: query.arrival,
            deadline: query.deadline,
            bin: stolen.bin,
            score_fp: score_fixed_point(stolen.score),
        });
        self.adopted.insert(id, query);
        id
    }

    fn on_rebalanced(&mut self, now: SimTime, backend: &mut dyn ExecutionBackend) {
        self.expire(now);
        self.replan(now, backend);
        self.schedule_dispatch(now, backend);
        if now >= self.plan_ready_at {
            self.dispatch(now, backend);
        }
    }
}

#[derive(Debug)]
struct Pending {
    set: ModelSet,
    outputs: Vec<(usize, Output)>,
    expected: usize,
    /// Failure count per base model (sparse; empty until a task fails).
    attempts: Vec<(usize, u8)>,
    /// The query lost at least one selected model to faults.
    degraded: bool,
}

/// The immediate-selection family (Fig. 2a–d) as a backend-agnostic engine.
///
/// Executor indices are deployment *instances*; `deployment.hosts` maps
/// each instance to the base model it serves.
pub struct ImmediateEngine<'a> {
    ensemble: &'a Ensemble,
    deployment: &'a Deployment,
    policy: &'a mut dyn SelectionPolicy,
    assembler: &'a ResultAssembler,
    admission: AdmissionMode,
    workload: &'a Workload,
    pending: HashMap<u64, Pending>,
    records: Vec<QueryRecord>,
    stats: EngineStats,
    completions: Vec<(u64, f64)>,
    trace: Arc<TraceSink>,
    failure: Option<FailurePolicy>,
    faults_seen: bool,
}

impl<'a> ImmediateEngine<'a> {
    /// An engine over `workload` with nothing pending yet.
    pub fn new(
        ensemble: &'a Ensemble,
        deployment: &'a Deployment,
        policy: &'a mut dyn SelectionPolicy,
        assembler: &'a ResultAssembler,
        admission: AdmissionMode,
        workload: &'a Workload,
    ) -> Self {
        Self {
            ensemble,
            deployment,
            policy,
            assembler,
            admission,
            workload,
            pending: HashMap::new(),
            records: blank_records(workload),
            stats: EngineStats::default(),
            completions: Vec::new(),
            trace: TraceSink::disabled(),
            failure: None,
            faults_seen: false,
        }
    }

    /// Emits decision events into `trace`; never alters a decision.
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the retry/degradation policy used when tasks fail.
    pub fn with_failure(mut self, policy: Option<FailurePolicy>) -> Self {
        self.failure = policy;
        self
    }

    /// Consumes the engine, aggregating per-instance usage into per-model
    /// [`ModelUsage`] through the deployment map.
    pub fn into_summary(self, usage: Vec<ExecutorUsage>) -> RunSummary {
        assert!(self.pending.is_empty(), "drained with pending queries");
        let models = (0..self.ensemble.m())
            .map(|k| {
                let mut busy = 0.0;
                let mut tasks = 0u64;
                let mut instances = 0usize;
                for inst in self.deployment.instances_of(k) {
                    busy += usage[inst].busy_secs;
                    tasks += usage[inst].tasks;
                    instances += 1;
                }
                ModelUsage {
                    name: self.ensemble.models[k].name.clone(),
                    busy_secs: busy,
                    tasks,
                    instances,
                }
            })
            .collect();
        RunSummary::new(self.records).with_usage(models)
    }

    fn on_arrival(&mut self, i: usize, now: SimTime, backend: &mut dyn ExecutionBackend) {
        let query = &self.workload.queries[i];
        self.stats.submitted += 1;
        self.trace.emit(TraceEvent::Arrival { t: now, query: query.id, deadline: query.deadline });
        let set = self.policy.select(query, self.ensemble);
        assert!(!set.is_empty(), "policy must select at least one model");
        // Choose the least-loaded *live* instance per selected model; a
        // model whose every instance is down drops out of the set up front.
        let mut usable = ModelSet::EMPTY;
        let mut chosen: Vec<usize> = Vec::with_capacity(set.len());
        for k in set.iter() {
            let mut hosted = false;
            let mut best: Option<usize> = None;
            for inst in self.deployment.instances_of(k) {
                hosted = true;
                if !backend.is_up(inst) {
                    continue;
                }
                let better = match best {
                    Some(b) => backend.available_at(inst, now) < backend.available_at(b, now),
                    None => true,
                };
                if better {
                    best = Some(inst);
                }
            }
            assert!(hosted, "deployment hosts no instance of model {k}");
            if let Some(inst) = best {
                usable = usable.with(k);
                chosen.push(inst);
            }
        }
        if usable.is_empty() {
            // Every selected model is down: refuse the query.
            self.stats.rejected += 1;
            self.trace.emit(TraceEvent::Admission {
                t: now,
                query: query.id,
                verdict: AdmissionVerdict::Rejected,
            });
            return;
        }
        // Serving fewer models than the policy asked for is already a
        // degraded answer, even before any task runs.
        let shrunk = usable != set;
        let set = usable;
        if self.admission == AdmissionMode::Reject {
            let est = chosen
                .iter()
                .map(|&inst| {
                    backend.available_at(inst, now)
                        + self.ensemble.latency(self.deployment.hosts[inst]).planned()
                })
                .max()
                .expect("non-empty set");
            if est > query.deadline {
                self.stats.rejected += 1;
                self.trace.emit(TraceEvent::Admission {
                    t: now,
                    query: query.id,
                    verdict: AdmissionVerdict::Rejected,
                });
                return; // rejected; record stays Missed.
            }
        }
        self.trace.emit(TraceEvent::Admission {
            t: now,
            query: query.id,
            verdict: AdmissionVerdict::Selected { set: set.0 },
        });
        self.records[i].models_used = set.len();
        self.pending.insert(
            query.id,
            Pending {
                set,
                outputs: Vec::new(),
                expected: set.len(),
                attempts: Vec::new(),
                degraded: shrunk,
            },
        );
        for &inst in &chosen {
            backend.enqueue_task(inst, query.id, now);
        }
    }

    fn on_task_done(&mut self, executor: usize, query: u64, now: SimTime) {
        let model = self.deployment.hosts[executor];
        let q = &self.workload.queries[query as usize];
        let entry = self.pending.get_mut(&query).expect("completion for unknown query");
        // Replicated deployments may run the same model once; outputs
        // are keyed by base model.
        entry
            .outputs
            .push((model, self.ensemble.models[model].infer(&q.sample, &self.ensemble.spec)));
        if entry.outputs.len() == entry.expected {
            self.finalize(query, now);
        }
    }

    /// A task execution failed. Re-enqueues it on the least-loaded live
    /// instance of the same model while the retry budget lasts; afterwards
    /// the model drops out and the query degrades to the remaining outputs.
    fn on_task_failed(
        &mut self,
        executor: usize,
        query: u64,
        now: SimTime,
        backend: &mut dyn ExecutionBackend,
    ) {
        self.faults_seen = true;
        self.stats.tasks_failed += 1;
        let policy = self.failure.unwrap_or_default();
        let model = self.deployment.hosts[executor];
        let mut finalize_now = false;
        let mut retry: Option<(usize, u8)> = None;
        {
            let Some(entry) = self.pending.get_mut(&query) else { return };
            let attempts = match entry.attempts.iter_mut().find(|(k, _)| *k == model) {
                Some((_, a)) => {
                    *a = a.saturating_add(1);
                    *a
                }
                None => {
                    entry.attempts.push((model, 1));
                    1
                }
            };
            let target = (u32::from(attempts) <= policy.max_retries)
                .then(|| {
                    self.deployment
                        .instances_of(model)
                        .filter(|&inst| backend.is_up(inst))
                        .min_by_key(|&inst| backend.available_at(inst, now))
                })
                .flatten();
            match target {
                Some(inst) => retry = Some((inst, attempts)),
                None => {
                    entry.set = entry.set.without(model);
                    entry.degraded = true;
                    entry.expected -= 1;
                    finalize_now = entry.outputs.len() == entry.expected;
                }
            }
        }
        if let Some((inst, attempt)) = retry {
            self.stats.tasks_retried += 1;
            self.trace.emit(TraceEvent::TaskRetried {
                t: now,
                query,
                executor: inst as u16,
                attempt,
            });
            backend.enqueue_task(inst, query, now);
        } else if finalize_now {
            self.finalize(query, now);
        }
    }

    /// Closes a pending query: assembles whatever arrived, or expires it
    /// when every selected model failed permanently.
    fn finalize(&mut self, query: u64, now: SimTime) {
        let done = self.pending.remove(&query).expect("present");
        let q = &self.workload.queries[query as usize];
        if done.outputs.is_empty() {
            self.records[query as usize].models_used = 0;
            self.stats.expired += 1;
            self.trace.emit(TraceEvent::QueryExpired { t: now, query });
            return;
        }
        let mut outputs = done.outputs;
        outputs.sort_by_key(|(k, _)| *k);
        let result = self.assembler.assemble(self.ensemble, &outputs, done.set);
        let (correct, score) = evaluate(self.ensemble, &q.sample, &result);
        self.records[query as usize].completion = Some(now);
        self.records[query as usize].models_used = done.set.len();
        self.completions.push((query, (now - q.arrival).as_secs_f64()));
        if done.degraded {
            self.records[query as usize].outcome = QueryOutcome::Degraded { correct, score };
            self.stats.degraded += 1;
            self.trace.emit(TraceEvent::DegradedAnswer { t: now, query, set: done.set.0 });
        } else {
            self.records[query as usize].outcome = QueryOutcome::Completed { correct, score };
            self.stats.completed += 1;
            self.trace.emit(TraceEvent::QueryDone { t: now, query, set: done.set.0 });
        }
    }
}

impl PipelineEngine for ImmediateEngine<'_> {
    fn handle(&mut self, event: BackendEvent, now: SimTime, backend: &mut dyn ExecutionBackend) {
        match event {
            BackendEvent::Arrival(i) => self.on_arrival(i, now, backend),
            BackendEvent::TaskDone { executor, query } => self.on_task_done(executor, query, now),
            BackendEvent::TaskFailed { executor, query } => {
                self.on_task_failed(executor, query, now, backend)
            }
            BackendEvent::ExecutorDown { .. } | BackendEvent::ExecutorUp { .. } => {
                // Selection consults `backend.is_up` live at arrival and on
                // retry; no standing state to update.
                self.faults_seen = true;
            }
            BackendEvent::Wake => {}
        }
    }

    fn open_count(&self) -> usize {
        self.pending.len()
    }

    fn next_wake_hint(&self, _now: SimTime) -> Option<SimTime> {
        // Immediate pipelines admit or reject at arrival and never expire
        // in-flight work; no timers needed.
        None
    }

    fn drain(&mut self, now: SimTime) {
        // Without faults, submitted tasks always run to completion; nothing
        // can be stuck. Under faults a query may be wedged waiting on a task
        // that will never report — close it with what it has.
        if !(self.faults_seen || self.failure.is_some()) {
            return;
        }
        let mut ids: Vec<u64> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            {
                let entry = self.pending.get_mut(&id).expect("present");
                entry.set = produced_set(&entry.outputs);
                entry.expected = entry.outputs.len();
                entry.degraded = true;
            }
            self.finalize(id, now);
        }
    }

    fn take_records(&mut self) -> Vec<QueryRecord> {
        std::mem::take(&mut self.records)
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn take_completions(&mut self) -> Vec<(u64, f64)> {
        std::mem::take(&mut self.completions)
    }
}
