//! Backend-agnostic pipeline engines.
//!
//! An engine is the pure *decision* half of a serving pipeline — admission,
//! scoring, planning, dispatch order, result assembly — expressed as a state
//! machine over [`BackendEvent`]s. The *execution* half (where tasks run,
//! how time passes) lives behind [`ExecutionBackend`]. The DES drivers in
//! [`crate::pipeline`] and the wall-clock runtime in `schemble-serve` both
//! drive these same engines, which is what makes their admission decisions
//! comparable: same events in, same decisions out, regardless of substrate.
//!
//! Two engines cover the paper's pipeline families:
//!
//! * [`SchembleEngine`] — the buffered, re-planning pipeline of Fig. 3
//!   (query buffer, discrepancy predictor, DP scheduler, EDF
//!   dispatch-on-idle, deadline expiry).
//! * [`ImmediateEngine`] — the immediate-selection family of Fig. 2a–d
//!   (Original / Static / DES / Gating): a [`SelectionPolicy`] picks a
//!   subset at arrival and tasks join per-instance FIFO queues at once.

use crate::backend::{BackendEvent, ExecutionBackend, ExecutorUsage};
use crate::pipeline::eval::evaluate;
use crate::pipeline::immediate::{Deployment, SelectionPolicy};
use crate::pipeline::schemble::SchembleConfig;
use crate::pipeline::{AdmissionMode, ResultAssembler};
use crate::scheduler::{BufferedQuery, ScheduleInput};
use schemble_data::Workload;
use schemble_metrics::{ModelUsage, QueryOutcome, QueryRecord, RunSummary};
use schemble_models::{Ensemble, ModelSet, Output};
use schemble_sim::{SimDuration, SimTime};
use schemble_trace::{AdmissionVerdict, TraceEvent, TraceSink};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Live query-outcome counters, maintained incrementally by every engine.
///
/// Conservation invariant (the serve runtime's property tests check it):
/// `submitted == completed + rejected + expired + open`, with `open`
/// reaching zero after [`PipelineEngine::drain`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Arrival events handled.
    pub submitted: u64,
    /// Queries completed with an assembled result.
    pub completed: u64,
    /// Queries refused at arrival by admission control.
    pub rejected: u64,
    /// Queries dropped after admission (deadline or end-of-trace).
    pub expired: u64,
}

impl EngineStats {
    /// Queries submitted but not yet decided.
    pub fn open(&self) -> u64 {
        self.submitted - (self.completed + self.rejected + self.expired)
    }
}

/// A pipeline's decision logic as a state machine over backend events.
///
/// The driver (DES loop or serving runtime) owns the backend, feeds every
/// event through [`PipelineEngine::handle`], and finally collects records.
pub trait PipelineEngine {
    /// Processes one event and issues any resulting backend actions.
    fn handle(&mut self, event: BackendEvent, now: SimTime, backend: &mut dyn ExecutionBackend);

    /// Queries admitted but not yet completed or expired.
    fn open_count(&self) -> usize;

    /// The next instant at which the engine needs a [`BackendEvent::Wake`]
    /// even if nothing completes or arrives (pending plan, predictor
    /// completion, earliest deadline). `None` when no timer is needed.
    fn next_wake_hint(&self, now: SimTime) -> Option<SimTime>;

    /// Closes out queries that can no longer make progress (end of trace,
    /// no running tasks). Their records keep the default `Missed` outcome.
    fn drain(&mut self, now: SimTime);

    /// Takes the per-query records accumulated so far.
    fn take_records(&mut self) -> Vec<QueryRecord>;

    /// Current outcome counters.
    fn stats(&self) -> EngineStats;

    /// Drains `(query id, latency secs)` pairs of queries completed since
    /// the last call — the runtime feeds these into its latency histogram.
    fn take_completions(&mut self) -> Vec<(u64, f64)>;
}

fn blank_records(workload: &Workload) -> Vec<QueryRecord> {
    workload
        .queries
        .iter()
        .map(|q| QueryRecord {
            id: q.id,
            arrival: q.arrival,
            deadline: q.deadline,
            completion: None,
            outcome: QueryOutcome::Missed,
            models_used: 0,
        })
        .collect()
}

#[derive(Debug)]
struct QState {
    deadline: SimTime,
    arrival: SimTime,
    /// Earliest dispatch (arrival + predictor latency).
    ready_at: SimTime,
    score: f64,
    utilities: Vec<f64>,
    set: ModelSet,
    started: ModelSet,
    outputs: Vec<(usize, Output)>,
    closed: bool,
}

/// The Schemble pipeline (Fig. 3) as a backend-agnostic engine.
///
/// Executor indices must equal base-model indices (identity deployment) —
/// the layout Schemble runs on in the paper.
pub struct SchembleEngine<'a> {
    ensemble: &'a Ensemble,
    config: &'a SchembleConfig,
    workload: &'a Workload,
    open: HashMap<u64, QState>,
    plan_ready_at: SimTime,
    records: Vec<QueryRecord>,
    stats: EngineStats,
    completions: Vec<(u64, f64)>,
    trace: Arc<TraceSink>,
}

impl<'a> SchembleEngine<'a> {
    /// An engine over `workload`, with no queries admitted yet.
    pub fn new(ensemble: &'a Ensemble, config: &'a SchembleConfig, workload: &'a Workload) -> Self {
        Self {
            ensemble,
            config,
            workload,
            open: HashMap::new(),
            plan_ready_at: SimTime::ZERO,
            records: blank_records(workload),
            stats: EngineStats::default(),
            completions: Vec::new(),
            trace: TraceSink::disabled(),
        }
    }

    /// Emits decision events into `trace` (and plan timings into its
    /// [`PlanningProfile`](schemble_trace::PlanningProfile)). Tracing never
    /// alters a decision: events carry only data the engine computed anyway.
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// Consumes the engine, aggregating backend usage into a [`RunSummary`].
    pub fn into_summary(self, usage: Vec<ExecutorUsage>) -> RunSummary {
        for (id, state) in &self.open {
            debug_assert!(state.started.is_empty(), "query {id} drained with running tasks");
        }
        let models = (0..self.ensemble.m())
            .map(|k| ModelUsage {
                name: self.ensemble.models[k].name.clone(),
                busy_secs: usage[k].busy_secs,
                tasks: usage[k].tasks,
                instances: 1,
            })
            .collect();
        RunSummary::new(self.records).with_usage(models)
    }

    fn on_arrival(&mut self, i: usize, now: SimTime, backend: &mut dyn ExecutionBackend) {
        let q = &self.workload.queries[i];
        self.stats.submitted += 1;
        self.trace.emit(TraceEvent::Arrival { t: now, query: q.id, deadline: q.deadline });
        // Fast path (§VIII): empty buffer + an idle model ⇒ skip
        // prediction and scheduling, run the fastest idle model now.
        if self.config.fast_path && self.open.is_empty() && backend.any_idle() {
            let k = backend
                .idle_executors()
                .into_iter()
                .min_by_key(|&k| self.ensemble.latency(k).planned())
                .expect("an idle server exists");
            self.trace.emit(TraceEvent::Admission {
                t: now,
                query: q.id,
                verdict: AdmissionVerdict::FastPath { executor: k as u16 },
            });
            backend.start_task(k, q.id, now);
            self.open.insert(
                q.id,
                QState {
                    deadline: q.deadline,
                    arrival: q.arrival,
                    ready_at: q.arrival,
                    score: 0.0,
                    utilities: self.config.profile.utility_vector(0.0),
                    set: ModelSet::singleton(k),
                    started: ModelSet::singleton(k),
                    outputs: Vec::new(),
                    closed: false,
                },
            );
            return;
        }
        self.trace.emit(TraceEvent::Admission {
            t: now,
            query: q.id,
            verdict: AdmissionVerdict::Buffered,
        });
        let score = self.config.scorer.score(&q.sample, self.ensemble).clamp(0.0, 1.0);
        let utilities = self.config.profile.utility_vector(score);
        self.open.insert(
            q.id,
            QState {
                deadline: q.deadline,
                arrival: q.arrival,
                ready_at: q.arrival + self.config.predictor_latency,
                score,
                utilities,
                set: ModelSet::EMPTY,
                started: ModelSet::EMPTY,
                outputs: Vec::new(),
                closed: false,
            },
        );
        // The query only becomes dispatchable once its score
        // prediction lands; make sure something fires then.
        let ready_at = q.arrival + self.config.predictor_latency;
        backend.request_wake(ready_at.max(now));
        self.expire(now);
        self.replan(now, backend);
        self.schedule_dispatch(now, backend);
    }

    fn on_task_done(
        &mut self,
        executor: usize,
        query: u64,
        now: SimTime,
        backend: &mut dyn ExecutionBackend,
    ) {
        {
            let q = &self.workload.queries[query as usize];
            let state = self.open.get_mut(&query).expect("completion for unknown query");
            state.outputs.push((
                executor,
                self.ensemble.models[executor].infer(&q.sample, &self.ensemble.spec),
            ));
        }
        self.finish_if_complete(query, now);
        self.expire(now);
        self.replan(now, backend);
        self.schedule_dispatch(now, backend);
    }

    /// Re-plans the unstarted buffer; updates when the new plan takes effect.
    fn replan(&mut self, now: SimTime, backend: &mut dyn ExecutionBackend) {
        let mut ids: Vec<u64> = self
            .open
            .iter()
            .filter(|(_, s)| s.started.is_empty() && !s.closed)
            .map(|(&id, _)| id)
            .collect();
        if ids.is_empty() {
            self.plan_ready_at = self.plan_ready_at.max(now);
            return;
        }
        ids.sort_unstable();
        // Availability must account for *committed* work: tasks of frozen
        // (already-started) queries that have not begun executing yet will
        // occupy their models before anything planned now — without this, the
        // planner overcommits and every plan completes late.
        let mut availability = backend.availability(now);
        for state in self.open.values() {
            if state.closed || state.started.is_empty() {
                continue;
            }
            for k in state.set.iter() {
                if !state.started.contains(k) {
                    availability[k] += self.ensemble.latency(k).planned();
                }
            }
        }
        let queries: Vec<BufferedQuery> = ids
            .iter()
            .map(|id| {
                let s = &self.open[id];
                BufferedQuery {
                    id: *id,
                    arrival: s.arrival,
                    deadline: s.deadline,
                    utilities: s.utilities.clone(),
                    score: s.score,
                }
            })
            .collect();
        let input = ScheduleInput {
            now,
            availability,
            latencies: self.ensemble.planned_latencies(),
            queries,
        };
        let plan_t0 = Instant::now();
        let plan = self.config.scheduler.plan(&input);
        self.trace.planning.record(plan.work, plan_t0.elapsed());
        for (pos, id) in ids.iter().enumerate() {
            self.open.get_mut(id).expect("present").set = plan.assignments[pos];
        }
        // Forced mode: queries the plan abandoned but that must run get the
        // least-loaded single model.
        if self.config.admission == AdmissionMode::ForceAll {
            let availability = backend.availability(now);
            for id in &ids {
                let s = self.open.get_mut(id).expect("present");
                if s.set.is_empty() {
                    let best = (0..self.ensemble.m())
                        .min_by_key(|&k| availability[k] + self.ensemble.latency(k).planned())
                        .expect("non-empty ensemble");
                    s.set = ModelSet::singleton(best);
                }
            }
        }
        let cost = SimDuration::from_micros(
            (self.config.sched_ns_per_unit * plan.work as f64 / 1000.0).round() as u64,
        ) + self.config.sched_base_overhead;
        self.plan_ready_at = now + cost;
        self.trace.emit(TraceEvent::Plan {
            t: now,
            buffer: ids.len() as u32,
            scheduled: plan.assignments.iter().filter(|s| !s.is_empty()).count() as u32,
            work: plan.work,
            cost,
        });
    }

    /// Starts tasks on idle executors per the current plan, in EDF order.
    fn dispatch(&mut self, now: SimTime, backend: &mut dyn ExecutionBackend) {
        // EDF order over open queries.
        let mut ids: Vec<u64> = self.open.keys().copied().collect();
        ids.sort_by_key(|id| (self.open[id].deadline, *id));
        for k in backend.idle_executors() {
            for id in &ids {
                let state = self.open.get_mut(id).expect("present");
                if state.closed
                    || !state.set.contains(k)
                    || state.started.contains(k)
                    || state.ready_at > now
                {
                    continue;
                }
                backend.start_task(k, *id, now);
                state.started = state.started.with(k);
                break;
            }
        }
    }

    /// Completes a query once outputs for its whole (possibly shrunk) set
    /// have arrived: assembles the result, evaluates it and records it.
    fn finish_if_complete(&mut self, query: u64, now: SimTime) {
        let Some(state) = self.open.get_mut(&query) else { return };
        if state.set.is_empty() || state.outputs.len() != state.set.len() {
            return;
        }
        let q = &self.workload.queries[query as usize];
        let mut outputs = std::mem::take(&mut state.outputs);
        outputs.sort_by_key(|(k, _)| *k);
        let result = self.config.assembler.assemble(self.ensemble, &outputs, state.set);
        let (correct, score) = evaluate(self.ensemble, &q.sample, &result);
        self.records[query as usize].completion = Some(now);
        self.records[query as usize].outcome = QueryOutcome::Completed { correct, score };
        self.records[query as usize].models_used = state.set.len();
        state.closed = true;
        let set = state.set;
        self.open.remove(&query);
        self.stats.completed += 1;
        self.completions.push((query, (now - q.arrival).as_secs_f64()));
        self.trace.emit(TraceEvent::QueryDone { t: now, query, set: set.0 });
    }

    /// Deadline housekeeping (Reject mode only; ForceAll keeps everything):
    /// unstarted expired queries are dropped, and already-started expired
    /// queries stop scheduling *further* tasks (their set shrinks to what
    /// has started — a late result is a miss either way, so the remaining
    /// capacity goes to queries that can still make it).
    fn expire(&mut self, now: SimTime) {
        if self.config.admission == AdmissionMode::ForceAll {
            return;
        }
        // Sorted so the emitted trace is independent of hash-map order.
        let mut expired: Vec<u64> = self
            .open
            .iter()
            .filter(|(_, s)| s.started.is_empty() && s.deadline < now)
            .map(|(&id, _)| id)
            .collect();
        expired.sort_unstable();
        for id in expired {
            self.open.remove(&id);
            // Record already defaults to Missed.
            self.records[id as usize].models_used = 0;
            self.stats.expired += 1;
            self.trace.emit(TraceEvent::QueryExpired { t: now, query: id });
        }
        let mut late_started: Vec<u64> = self
            .open
            .iter()
            .filter(|(_, s)| !s.started.is_empty() && s.deadline < now && s.set != s.started)
            .map(|(&id, _)| id)
            .collect();
        late_started.sort_unstable();
        for id in late_started {
            let state = self.open.get_mut(&id).expect("present");
            state.set = state.started;
            self.finish_if_complete(id, now);
        }
    }

    /// Ensures a wake-up fires when a pending plan becomes effective.
    fn schedule_dispatch(&mut self, now: SimTime, backend: &mut dyn ExecutionBackend) {
        if self.plan_ready_at > now {
            backend.request_wake(self.plan_ready_at);
        }
    }
}

impl PipelineEngine for SchembleEngine<'_> {
    fn handle(&mut self, event: BackendEvent, now: SimTime, backend: &mut dyn ExecutionBackend) {
        match event {
            BackendEvent::Arrival(i) => self.on_arrival(i, now, backend),
            BackendEvent::TaskDone { executor, query } => {
                self.on_task_done(executor, query, now, backend)
            }
            BackendEvent::Wake => self.expire(now),
        }
        // Dispatch whenever the latest plan is effective.
        if now >= self.plan_ready_at {
            self.dispatch(now, backend);
        }
    }

    fn open_count(&self) -> usize {
        self.open.len()
    }

    fn next_wake_hint(&self, now: SimTime) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        if self.plan_ready_at > now {
            consider(self.plan_ready_at);
        }
        for state in self.open.values() {
            if state.started.is_empty() {
                consider(state.ready_at);
            }
            if self.config.admission == AdmissionMode::Reject && !state.closed {
                consider(state.deadline);
            }
        }
        next
    }

    fn drain(&mut self, now: SimTime) {
        // End of trace: whatever never started can no longer complete.
        let mut stuck: Vec<u64> =
            self.open.iter().filter(|(_, s)| s.started.is_empty()).map(|(&id, _)| id).collect();
        stuck.sort_unstable();
        for id in stuck {
            self.open.remove(&id);
            self.records[id as usize].models_used = 0;
            self.stats.expired += 1;
            self.trace.emit(TraceEvent::QueryExpired { t: now, query: id });
        }
    }

    fn take_records(&mut self) -> Vec<QueryRecord> {
        std::mem::take(&mut self.records)
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn take_completions(&mut self) -> Vec<(u64, f64)> {
        std::mem::take(&mut self.completions)
    }
}

#[derive(Debug)]
struct Pending {
    set: ModelSet,
    outputs: Vec<(usize, Output)>,
    expected: usize,
}

/// The immediate-selection family (Fig. 2a–d) as a backend-agnostic engine.
///
/// Executor indices are deployment *instances*; `deployment.hosts` maps
/// each instance to the base model it serves.
pub struct ImmediateEngine<'a> {
    ensemble: &'a Ensemble,
    deployment: &'a Deployment,
    policy: &'a mut dyn SelectionPolicy,
    assembler: &'a ResultAssembler,
    admission: AdmissionMode,
    workload: &'a Workload,
    pending: HashMap<u64, Pending>,
    records: Vec<QueryRecord>,
    stats: EngineStats,
    completions: Vec<(u64, f64)>,
    trace: Arc<TraceSink>,
}

impl<'a> ImmediateEngine<'a> {
    /// An engine over `workload` with nothing pending yet.
    pub fn new(
        ensemble: &'a Ensemble,
        deployment: &'a Deployment,
        policy: &'a mut dyn SelectionPolicy,
        assembler: &'a ResultAssembler,
        admission: AdmissionMode,
        workload: &'a Workload,
    ) -> Self {
        Self {
            ensemble,
            deployment,
            policy,
            assembler,
            admission,
            workload,
            pending: HashMap::new(),
            records: blank_records(workload),
            stats: EngineStats::default(),
            completions: Vec::new(),
            trace: TraceSink::disabled(),
        }
    }

    /// Emits decision events into `trace`; never alters a decision.
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// Consumes the engine, aggregating per-instance usage into per-model
    /// [`ModelUsage`] through the deployment map.
    pub fn into_summary(self, usage: Vec<ExecutorUsage>) -> RunSummary {
        assert!(self.pending.is_empty(), "drained with pending queries");
        let models = (0..self.ensemble.m())
            .map(|k| {
                let mut busy = 0.0;
                let mut tasks = 0u64;
                let mut instances = 0usize;
                for inst in self.deployment.instances_of(k) {
                    busy += usage[inst].busy_secs;
                    tasks += usage[inst].tasks;
                    instances += 1;
                }
                ModelUsage {
                    name: self.ensemble.models[k].name.clone(),
                    busy_secs: busy,
                    tasks,
                    instances,
                }
            })
            .collect();
        RunSummary::new(self.records).with_usage(models)
    }

    fn on_arrival(&mut self, i: usize, now: SimTime, backend: &mut dyn ExecutionBackend) {
        let query = &self.workload.queries[i];
        self.stats.submitted += 1;
        self.trace.emit(TraceEvent::Arrival { t: now, query: query.id, deadline: query.deadline });
        let set = self.policy.select(query, self.ensemble);
        assert!(!set.is_empty(), "policy must select at least one model");
        // Choose the least-loaded instance per selected model.
        let chosen: Vec<usize> = set
            .iter()
            .map(|k| {
                self.deployment
                    .instances_of(k)
                    .min_by_key(|&inst| backend.available_at(inst, now))
                    .unwrap_or_else(|| panic!("deployment hosts no instance of model {k}"))
            })
            .collect();
        if self.admission == AdmissionMode::Reject {
            let est = chosen
                .iter()
                .map(|&inst| {
                    backend.available_at(inst, now)
                        + self.ensemble.latency(self.deployment.hosts[inst]).planned()
                })
                .max()
                .expect("non-empty set");
            if est > query.deadline {
                self.stats.rejected += 1;
                self.trace.emit(TraceEvent::Admission {
                    t: now,
                    query: query.id,
                    verdict: AdmissionVerdict::Rejected,
                });
                return; // rejected; record stays Missed.
            }
        }
        self.trace.emit(TraceEvent::Admission {
            t: now,
            query: query.id,
            verdict: AdmissionVerdict::Selected { set: set.0 },
        });
        self.records[i].models_used = set.len();
        self.pending.insert(query.id, Pending { set, outputs: Vec::new(), expected: set.len() });
        for &inst in &chosen {
            backend.enqueue_task(inst, query.id, now);
        }
    }

    fn on_task_done(&mut self, executor: usize, query: u64, now: SimTime) {
        let model = self.deployment.hosts[executor];
        let q = &self.workload.queries[query as usize];
        let entry = self.pending.get_mut(&query).expect("completion for unknown query");
        // Replicated deployments may run the same model once; outputs
        // are keyed by base model.
        entry
            .outputs
            .push((model, self.ensemble.models[model].infer(&q.sample, &self.ensemble.spec)));
        if entry.outputs.len() == entry.expected {
            let done = self.pending.remove(&query).expect("present");
            let mut outputs = done.outputs;
            outputs.sort_by_key(|(k, _)| *k);
            let result = self.assembler.assemble(self.ensemble, &outputs, done.set);
            let (correct, score) = evaluate(self.ensemble, &q.sample, &result);
            self.records[query as usize].completion = Some(now);
            self.records[query as usize].outcome = QueryOutcome::Completed { correct, score };
            self.stats.completed += 1;
            self.completions.push((query, (now - q.arrival).as_secs_f64()));
            self.trace.emit(TraceEvent::QueryDone { t: now, query, set: done.set.0 });
        }
    }
}

impl PipelineEngine for ImmediateEngine<'_> {
    fn handle(&mut self, event: BackendEvent, now: SimTime, backend: &mut dyn ExecutionBackend) {
        match event {
            BackendEvent::Arrival(i) => self.on_arrival(i, now, backend),
            BackendEvent::TaskDone { executor, query } => self.on_task_done(executor, query, now),
            BackendEvent::Wake => {}
        }
    }

    fn open_count(&self) -> usize {
        self.pending.len()
    }

    fn next_wake_hint(&self, _now: SimTime) -> Option<SimTime> {
        // Immediate pipelines admit or reject at arrival and never expire
        // in-flight work; no timers needed.
        None
    }

    fn drain(&mut self, _now: SimTime) {
        // Submitted tasks always run to completion; nothing can be stuck.
    }

    fn take_records(&mut self) -> Vec<QueryRecord> {
        std::mem::take(&mut self.records)
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn take_completions(&mut self) -> Vec<(u64, f64)> {
        std::mem::take(&mut self.completions)
    }
}
