//! Per-model temperature scaling (§V-A).
//!
//! Deep networks are "discovered to be poorly calibrated"; divergences
//! between raw outputs are dominated by each model's confidence habits rather
//! than genuine disagreement. Before computing discrepancy scores, each
//! classifier's outputs are temperature-scaled with a scalar fitted on
//! historical data (Guo et al., ICML'17). Regression models need no
//! calibration and get temperature 1.

use schemble_models::{Ensemble, Output, Sample};
use schemble_tensor::prob::fit_temperature;

/// Fitted per-model calibration temperatures.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    temps: Vec<f64>,
}

impl Calibration {
    /// Identity calibration (all temperatures 1) for `m` models.
    pub fn identity(m: usize) -> Self {
        Self { temps: vec![1.0; m] }
    }

    /// Fits one temperature per base model on historical samples, minimising
    /// NLL against the true labels.
    pub fn fit(ensemble: &Ensemble, history: &[Sample]) -> Self {
        assert!(!history.is_empty(), "cannot calibrate on empty history");
        if !ensemble.spec.is_categorical() {
            return Self::identity(ensemble.m());
        }
        let temps = (0..ensemble.m())
            .map(|k| {
                let mut outputs = Vec::with_capacity(history.len());
                let mut labels = Vec::with_capacity(history.len());
                for s in history {
                    match ensemble.models[k].infer(s, &ensemble.spec) {
                        Output::Probs(p) => outputs.push(p),
                        Output::Scalar(_) => unreachable!("categorical spec"),
                    }
                    labels.push(s.label.class());
                }
                fit_temperature(&outputs, &labels)
            })
            .collect();
        Self { temps }
    }

    /// The fitted temperature of model `k`.
    pub fn temperature(&self, k: usize) -> f64 {
        self.temps[k]
    }

    /// Applies model `k`'s calibration to an output.
    pub fn apply(&self, k: usize, output: &Output) -> Output {
        output.calibrated(self.temps[k])
    }

    /// Number of models covered.
    pub fn len(&self) -> usize {
        self.temps.len()
    }

    /// True when covering zero models.
    pub fn is_empty(&self) -> bool {
        self.temps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_models::zoo;
    use schemble_models::{DifficultyDist, SampleGenerator};

    #[test]
    fn fitted_temperatures_soften_overconfident_models() {
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 3);
        let history = gen.batch(0, 1500);
        let cal = Calibration::fit(&ens, &history);
        let fitted_all: Vec<f64> = (0..ens.m()).map(|k| cal.temperature(k)).collect();
        // Ordering must track the injected miscalibration: BiLSTM (3.4) >
        // RoBERTa (2.0) > BERT (1.4).
        assert!(
            fitted_all[0] > fitted_all[1] && fitted_all[1] > fitted_all[2],
            "fitted temperatures should order like injected ones: {fitted_all:?}"
        );
        for k in 0..ens.m() {
            let injected = ens.models[k].miscal_temp;
            let fitted = cal.temperature(k);
            assert!(
                fitted > 1.2,
                "model {k} ({}) should need softening: fitted {fitted:.2}",
                ens.models[k].name
            );
            // The difficulty-dependent logit gain means the single fitted
            // temperature exceeds the injected constant; what must survive
            // is that more-miscalibrated models fit larger temperatures.
            let _ = injected;
        }
    }

    #[test]
    fn regression_models_are_identity() {
        let ens = zoo::vehicle_counting(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 3);
        let history = gen.batch(0, 200);
        let cal = Calibration::fit(&ens, &history);
        for k in 0..ens.m() {
            assert_eq!(cal.temperature(k), 1.0);
        }
    }

    #[test]
    fn apply_softens_probabilities() {
        let cal = Calibration { temps: vec![2.0] };
        let out = Output::Probs(vec![0.95, 0.05]);
        if let Output::Probs(p) = cal.apply(0, &out) {
            assert!(p[0] < 0.95 && p[0] > 0.5);
        } else {
            panic!("calibration changed output kind");
        }
    }

    #[test]
    fn identity_is_noop() {
        let cal = Calibration::identity(2);
        let out = Output::Probs(vec![0.7, 0.3]);
        if let Output::Probs(p) = cal.apply(1, &out) {
            assert!((p[0] - 0.7).abs() < 1e-9);
        }
    }
}
