//! Schemble core: the paper's contribution.
//!
//! The framework decomposes into the modules of Fig. 3:
//!
//! * [`calibration`] — per-model temperature scaling (Guo et al.), applied to
//!   classifier outputs before any divergence is computed (§V-A).
//! * [`discrepancy`] — the **discrepancy score** (Eq. 1): normalised average
//!   distance between each base model's calibrated output and the ensemble's
//!   output; plus the *ensemble agreement* baseline metric it improves on.
//! * [`profiling`] — **model-combination accuracy profiling** (§V-D): bin
//!   historical samples by score, measure every subset's agreement with the
//!   ensemble per bin, and (for large ensembles) estimate big-set utilities
//!   with the marginal-reward recursion of Eq. 3.
//! * [`predictor`] — online score estimation: the two-headed network of §V-C
//!   (implemented in `schemble-nn`) plus oracle/constant scorers used by the
//!   `Schemble*(Oracle)` and `Schemble(t)` ablations.
//! * [`scheduler`] — the **task scheduler** (§VI): the quantized
//!   dynamic-programming algorithm (Alg. 1) with Pareto pruning and EDF
//!   execution order, plus the Greedy+EDF/FIFO/SJF baselines of Exp-4.
//! * [`filling`] — **missing-value filling** (§VII): vote exclusion, weight
//!   renormalisation, and the KNN filler for stacking aggregators.
//! * [`pipeline`] — the discrete-event serving pipelines: the original
//!   run-everything pipeline, immediate-selection baselines (static
//!   deployments with replicas, feature-based selectors) and the full
//!   Schemble pipeline (query buffer, dispatch-on-idle, re-planning,
//!   scheduling-cost accounting).
//! * [`offline`] — the offline budgeted-selection variant `Schemble*`
//!   (Fig. 16).
//! * [`artifacts`] / [`experiment`] — everything wired together: train once
//!   per task/seed, then run any pipeline under any workload.

pub mod artifacts;
pub mod backend;
pub mod calibration;
pub mod discrepancy;
pub mod engine;
pub mod experiment;
pub mod filling;
pub mod offline;
pub mod pipeline;
pub mod predictor;
pub mod profiling;
pub mod scheduler;

pub use artifacts::SchembleArtifacts;
pub use discrepancy::{DifficultyMetric, DiscrepancyScorer};
pub use profiling::AccuracyProfile;
