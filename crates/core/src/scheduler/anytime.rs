//! The quit-aware ("anytime") planner.
//!
//! Anytime execution splits into two decisions. *What to plan* stays with
//! the wrapped scheduler: [`AnytimeScheduler`] delegates [`Scheduler::plan_into`]
//! unchanged (reusing the caller's [`SchedScratch`]), because the DP's
//! subset selection is already utility-optimal and the engine runs on an
//! identity deployment, where each query's task *start* order is fixed by
//! executor availability rather than by the plan. *What to quit* — and in
//! which order the still-missing tasks would be worth finishing — is the new
//! part: [`gain_order_into`] ranks a query's remaining tasks by marginal
//! profiled utility per unit of planned latency, and the engine's quit rule
//! keeps only the cheapest prefix of that ranking that crosses the
//! confidence threshold (see `SchembleEngine::anytime_quit`).

use super::{SchedScratch, ScheduleInput, SchedulePlan, Scheduler};
use schemble_models::ModelSet;
use schemble_sim::SimDuration;

/// Ranks `remaining` tasks by expected information gain: greedy marginal
/// utility per planned latency, starting from the `produced` subset.
///
/// `utilities` is the query's profiled utility vector indexed by subset mask
/// (monotone: supersets never score lower). Each round picks the task whose
/// addition to the accumulated subset buys the most utility per microsecond
/// of planned latency; ties break toward the lowest model index, so the
/// order is deterministic. The result is written into `out` (cleared first)
/// so steady-state callers can reuse one buffer.
pub fn gain_order_into(
    utilities: &[f64],
    latencies: &[SimDuration],
    produced: ModelSet,
    remaining: ModelSet,
    out: &mut Vec<usize>,
) {
    out.clear();
    let mut acc = produced;
    let mut pool: Vec<usize> = remaining.iter().collect();
    while !pool.is_empty() {
        let base = utilities[acc.0 as usize];
        let mut best = 0usize;
        let mut best_gain = f64::NEG_INFINITY;
        for (i, &k) in pool.iter().enumerate() {
            let gain = (utilities[acc.with(k).0 as usize] - base)
                / (latencies[k].as_micros().max(1) as f64);
            if gain > best_gain {
                best_gain = gain;
                best = i;
            }
        }
        let k = pool.remove(best);
        acc = acc.with(k);
        out.push(k);
    }
}

/// A [`Scheduler`] wrapper that labels a plan as quit-aware.
///
/// Planning is delegated verbatim — byte-identical assignments, work counts
/// and scratch usage — so wrapping a scheduler never changes a plan. What
/// the wrapper buys is provenance: `name()` marks run output (experiment
/// tables, `Plan` trace events consumers) as produced under the anytime
/// policy, where the engine may cut a planned set short at execution time.
pub struct AnytimeScheduler {
    inner: Box<dyn Scheduler>,
}

impl AnytimeScheduler {
    /// Wraps `inner`; its plans pass through unchanged.
    pub fn new(inner: Box<dyn Scheduler>) -> Self {
        Self { inner }
    }
}

impl Scheduler for AnytimeScheduler {
    fn plan_into(&self, input: &ScheduleInput, scratch: &mut SchedScratch, out: &mut SchedulePlan) {
        self.inner.plan_into(input, scratch, out);
    }

    fn name(&self) -> String {
        format!("anytime({})", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::tight_instance;
    use super::*;
    use crate::scheduler::DpScheduler;

    #[test]
    fn gain_order_ranks_by_marginal_utility_per_latency() {
        // Masks: [∅, {0}, {1}, {0,1}]. Model 0: +0.6 over 10ms = 0.06/ms;
        // model 1: +0.7 over 20ms = 0.035/ms — model 0 first.
        let utilities = vec![0.0, 0.6, 0.7, 1.0];
        let latencies = vec![SimDuration::from_millis(10), SimDuration::from_millis(20)];
        let mut order = Vec::new();
        gain_order_into(&utilities, &latencies, ModelSet::EMPTY, ModelSet::full(2), &mut order);
        assert_eq!(order, vec![0, 1]);
        // Starting from {0}, only model 1 remains.
        gain_order_into(
            &utilities,
            &latencies,
            ModelSet::singleton(0),
            ModelSet::singleton(1),
            &mut order,
        );
        assert_eq!(order, vec![1]);
    }

    #[test]
    fn gain_order_breaks_ties_toward_lowest_index() {
        // Identical marginal utilities and latencies: ascending index order.
        let utilities = vec![0.0, 0.5, 0.5, 1.0];
        let latencies = vec![SimDuration::from_millis(10); 2];
        let mut order = Vec::new();
        gain_order_into(&utilities, &latencies, ModelSet::EMPTY, ModelSet::full(2), &mut order);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn wrapper_plans_are_identical_to_inner() {
        let input = tight_instance();
        let inner = DpScheduler::default().plan(&input);
        let wrapped = AnytimeScheduler::new(Box::new(DpScheduler::default())).plan(&input);
        assert_eq!(inner.assignments, wrapped.assignments);
        assert_eq!(inner.work, wrapped.work);
    }

    #[test]
    fn wrapper_name_carries_inner_name() {
        let s = AnytimeScheduler::new(Box::new(DpScheduler::default()));
        assert_eq!(s.name(), format!("anytime({})", DpScheduler::default().name()));
    }
}
