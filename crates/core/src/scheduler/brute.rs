//! Exact exponential solver for validating the DP on small instances.
//!
//! Enumerates every assignment of subsets to queries under consistent EDF
//! order (which Theorems 1–2 show is without loss of optimality) and returns
//! a maximum-utility feasible plan. Cost is `(2^m)^n` — test-only.

use super::input::{ScheduleInput, SchedulePlan};
use schemble_models::ModelSet;

/// The optimal plan under EDF order.
///
/// # Panics
/// Panics on instances large enough to be a mistake (`(2^m)^n > 10^7`).
pub fn optimal_plan(input: &ScheduleInput) -> SchedulePlan {
    let n = input.queries.len();
    let m = input.m();
    let options = 1usize << m;
    let combos = (options as f64).powi(n as i32);
    assert!(combos <= 1e7, "brute force over {combos} assignments — use the DP");

    let order = input.edf_order();
    let mut best = SchedulePlan::empty(n);
    let mut best_utility = 0.0f64;
    let mut assignment = vec![ModelSet::EMPTY; n];
    search(input, &order, 0, &mut assignment, &mut best, &mut best_utility);
    best.order = order;
    best
}

fn search(
    input: &ScheduleInput,
    order: &[usize],
    depth: usize,
    assignment: &mut Vec<ModelSet>,
    best: &mut SchedulePlan,
    best_utility: &mut f64,
) {
    if depth == order.len() {
        let plan = SchedulePlan {
            assignments: assignment.clone(),
            order: order.to_vec(),
            work: 0,
            frontier: 0,
        };
        if input.plan_is_feasible(&plan) {
            let u = input.plan_utility(&plan);
            if u > *best_utility {
                *best_utility = u;
                *best = plan;
            }
        }
        return;
    }
    let qi = order[depth];
    for set in ModelSet::all(input.m()) {
        assignment[qi] = set;
        search(input, order, depth + 1, assignment, best, best_utility);
    }
    assignment[qi] = ModelSet::EMPTY;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::input::BufferedQuery;
    use schemble_sim::{SimDuration, SimTime};

    #[test]
    fn finds_the_sharing_optimum() {
        let utilities = vec![0.0, 0.9, 0.9, 1.0];
        let mk = |id| BufferedQuery {
            id,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_millis(15),
            utilities: utilities.clone(),
            score: 0.5,
        };
        let input = ScheduleInput {
            now: SimTime::ZERO,
            availability: vec![SimTime::ZERO; 2],
            latencies: vec![SimDuration::from_millis(10); 2],
            queries: vec![mk(0), mk(1)],
        };
        let plan = optimal_plan(&input);
        // Optimal: one model each (0.9 + 0.9) beats full-set-for-one (1.0).
        assert!((input.plan_utility(&plan) - 1.8).abs() < 1e-9);
        assert!(input.plan_is_feasible(&plan));
    }

    #[test]
    #[should_panic(expected = "brute force")]
    fn refuses_large_instances() {
        let q = BufferedQuery {
            id: 0,
            arrival: SimTime::ZERO,
            deadline: SimTime::from_millis(10),
            utilities: vec![0.0; 1 << 4],
            score: 0.0,
        };
        let input = ScheduleInput {
            now: SimTime::ZERO,
            availability: vec![SimTime::ZERO; 4],
            latencies: vec![SimDuration::from_millis(1); 4],
            queries: vec![q; 8],
        };
        let _ = optimal_plan(&input);
    }
}
