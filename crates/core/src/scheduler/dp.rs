//! Alg. 1: quantized dynamic-programming scheduling with Pareto pruning.
//!
//! Queries are processed in EDF order (Theorems 1–2). The DP walks the
//! queries, maintaining a frontier of partial solutions; each solution
//! carries its quantized cumulative reward `u` (in units of `δ`) and the
//! vector of per-model finish times its choices imply. Extending a solution
//! with subset `s` for query `i` is feasible iff the query's completion
//! (max over chosen models of `finish_k + T_k`) meets its deadline.
//!
//! The paper's `Comb/Time` table indexed by `(i, u)` with per-cell pruning is
//! realised sparsely: the frontier *is* the set of non-empty cells, and the
//! pruning rule is strengthened to full Pareto dominance across cells —
//! solution A dominates B when `A.u ≥ B.u` and `A.times ≤ B.times`
//! element-wise (any completion achievable from B is achievable from A at no
//! less reward, so dropping B is exact). A frontier cap bounds worst-case
//! cost; the default is far above what quantized instances reach in practice.
//!
//! The returned [`SchedulePlan::work`] charges the *dense* table cost of
//! Alg. 1 as written — `Σ_i (i/δ) · 2^m` cell updates — which the serving
//! pipeline converts into scheduling latency. The sparse frontier here is a
//! wall-clock optimisation that produces the same plan; the simulated system
//! still pays the algorithm's nominal cost, which is what makes `δ = 0.001`
//! *lose* end-to-end in Fig. 12/21 despite its better plans.

use super::input::{ScheduleInput, SchedulePlan};
use super::Scheduler;
use schemble_models::ModelSet;
use schemble_sim::SimTime;

/// Alg. 1 with quantization step `delta`.
///
/// # Examples
///
/// The §I example: three 20 ms models, two queries due at 25 ms — the DP
/// splits the models so both queries are served.
///
/// ```
/// use schemble_core::scheduler::{BufferedQuery, DpScheduler, ScheduleInput, Scheduler};
/// use schemble_sim::{SimDuration, SimTime};
///
/// let query = |id| BufferedQuery {
///     id,
///     arrival: SimTime::ZERO,
///     deadline: SimTime::from_millis(25),
///     utilities: vec![0.0, 0.9, 0.9, 0.95, 0.9, 0.95, 0.95, 1.0],
///     score: 0.2,
/// };
/// let input = ScheduleInput {
///     now: SimTime::ZERO,
///     availability: vec![SimTime::ZERO; 3],
///     latencies: vec![SimDuration::from_millis(20); 3],
///     queries: vec![query(0), query(1)],
/// };
/// let plan = DpScheduler::default().plan(&input);
/// assert_eq!(plan.scheduled_count(), 2);
/// assert!(input.plan_is_feasible(&plan));
/// ```
#[derive(Debug, Clone)]
pub struct DpScheduler {
    /// Reward quantization step δ (paper default 0.01).
    pub delta: f64,
    /// Pareto-frontier cap (beam width); the exact frontier rarely exceeds a
    /// few dozen nodes on quantized instances, so the default cap is
    /// effectively exact while bounding adversarial cases.
    pub max_frontier: usize,
    /// At most this many EDF-first queries are planned per round; the rest
    /// stay buffered for the next invocation.
    pub max_queries: usize,
}

impl Default for DpScheduler {
    fn default() -> Self {
        Self { delta: 0.01, max_frontier: 64, max_queries: 24 }
    }
}

impl DpScheduler {
    /// A DP scheduler with the given δ and default caps.
    pub fn with_delta(delta: f64) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        Self { delta, ..Self::default() }
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// Quantized cumulative reward in δ units.
    u: u64,
    /// Per-model finish times implied by the choices so far.
    times: Vec<SimTime>,
    /// Index of the parent node in the previous layer.
    parent: usize,
    /// Subset chosen for the query of this layer.
    choice: ModelSet,
}

impl Scheduler for DpScheduler {
    fn plan(&self, input: &ScheduleInput) -> SchedulePlan {
        let n = input.queries.len();
        if n == 0 {
            return SchedulePlan::empty(0);
        }
        let m = input.m();
        let order = input.edf_order();
        let planned: Vec<usize> = order.iter().copied().take(self.max_queries).collect();

        let start_times: Vec<SimTime> =
            input.availability.iter().map(|&a| a.max(input.now)).collect();
        let root = Node { u: 0, times: start_times, parent: usize::MAX, choice: ModelSet::EMPTY };

        let mut layers: Vec<Vec<Node>> = Vec::with_capacity(planned.len() + 1);
        layers.push(vec![root]);
        // `work` models the cost of Alg. 1 as written: a dense table over
        // (queries × quantized reward levels × subsets). The Pareto-sparse
        // frontier below computes the same plan much faster in wall-clock,
        // but the *simulated* scheduler is charged the dense cost — that is
        // what the paper's implementation pays and what makes δ = 0.001
        // lose end-to-end (Fig. 12/21).
        let mut work = 0u64;

        for (step, &qi) in planned.iter().enumerate() {
            let dense_levels = (((step + 1) as f64) / self.delta).ceil() as u64;
            work += dense_levels * (1u64 << m);
            let q = &input.queries[qi];
            let prev = layers.last().expect("non-empty layers");
            let mut next: Vec<Node> = Vec::with_capacity(prev.len() * 2);
            for (pi, node) in prev.iter().enumerate() {
                // Skipping the query is always allowed (cell copy in Alg. 1).
                next.push(Node {
                    u: node.u,
                    times: node.times.clone(),
                    parent: pi,
                    choice: ModelSet::EMPTY,
                });
                for set in ModelSet::all_nonempty(m) {
                    let reward = q.utilities[set.0 as usize];
                    let quantized = (reward / self.delta).floor() as u64;
                    // Zero-reward execution wastes capacity; skip-equivalent.
                    if quantized == 0 {
                        continue;
                    }
                    let mut times = node.times.clone();
                    let mut completion = SimTime::ZERO;
                    for k in set.iter() {
                        let finish = times[k] + input.latencies[k];
                        times[k] = finish;
                        completion = completion.max(finish);
                    }
                    if completion > q.deadline {
                        continue;
                    }
                    next.push(Node { u: node.u + quantized, times, parent: pi, choice: set });
                }
            }
            prune(&mut next, self.max_frontier);
            layers.push(next);
        }

        // Best terminal node: max u, ties toward earlier total finish time.
        let last = layers.last().expect("non-empty layers");
        let mut best = 0usize;
        for (i, node) in last.iter().enumerate() {
            let better = node.u > last[best].u
                || (node.u == last[best].u
                    && total_micros(&node.times) < total_micros(&last[best].times));
            if better {
                best = i;
            }
        }

        // Backtrack choices through the layers.
        let mut assignments = vec![ModelSet::EMPTY; n];
        let mut idx = best;
        for layer in (1..layers.len()).rev() {
            let node = &layers[layer][idx];
            assignments[planned[layer - 1]] = node.choice;
            idx = node.parent;
        }

        SchedulePlan { assignments, order, work }
    }

    fn name(&self) -> String {
        format!("DP(δ={})", self.delta)
    }
}

fn total_micros(times: &[SimTime]) -> u128 {
    times.iter().map(|t| t.as_micros() as u128).sum()
}

/// Pareto pruning: drop any node dominated by another (`u` ≥ and all `times`
/// ≤, with at least the tie resolved deterministically), then cap the
/// frontier keeping the highest-reward nodes.
fn prune(nodes: &mut Vec<Node>, cap: usize) {
    // Sort by reward descending, then total time ascending — dominators
    // come first, making the scan below O(kept · total).
    nodes.sort_by(|a, b| {
        b.u.cmp(&a.u).then_with(|| total_micros(&a.times).cmp(&total_micros(&b.times)))
    });
    let mut kept: Vec<Node> = Vec::with_capacity(nodes.len().min(cap));
    'candidates: for node in nodes.drain(..) {
        for k in &kept {
            if k.u >= node.u && k.times.iter().zip(&node.times).all(|(a, b)| a <= b) {
                continue 'candidates;
            }
        }
        kept.push(node);
        if kept.len() >= cap {
            break;
        }
    }
    *nodes = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::brute::optimal_plan;
    use crate::scheduler::input::BufferedQuery;
    use schemble_sim::SimDuration;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn query(id: u64, deadline_ms: u64, utilities: Vec<f64>) -> BufferedQuery {
        BufferedQuery { id, arrival: at(0), deadline: at(deadline_ms), utilities, score: 0.5 }
    }

    #[test]
    fn splits_models_across_two_easy_queries() {
        // The paper's §I example: two easy queries, three models. Running the
        // full set on query 1 would block query 2; splitting processes both.
        let utilities = vec![0.0, 0.9, 0.9, 0.92, 0.9, 0.92, 0.92, 1.0];
        let input = ScheduleInput {
            now: at(0),
            availability: vec![at(0); 3],
            latencies: vec![ms(20), ms(20), ms(20)],
            queries: vec![query(0, 25, utilities.clone()), query(1, 25, utilities)],
        };
        let plan = DpScheduler::default().plan(&input);
        assert_eq!(plan.scheduled_count(), 2, "both queries must be served");
        assert!(input.plan_is_feasible(&plan));
        // Neither query can take more than the deadline allows (one round).
        let total_models: usize = plan.assignments.iter().map(|s| s.len()).sum();
        assert_eq!(total_models, 3, "all three models should be used exactly once");
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        // Deterministic sweep of small instances; DP with tiny δ must equal
        // the exact optimum.
        let mut mismatches = 0;
        for seed in 0..20u64 {
            let input = random_instance(seed, 4, 2);
            let dp = DpScheduler { delta: 1e-4, max_frontier: 4096, max_queries: 24 }.plan(&input);
            let best = optimal_plan(&input);
            let dp_u = input.plan_utility(&dp);
            let opt_u = input.plan_utility(&best);
            assert!(input.plan_is_feasible(&dp));
            if (dp_u - opt_u).abs() > 1e-6 {
                mismatches += 1;
                eprintln!("seed {seed}: dp {dp_u} vs opt {opt_u}");
            }
        }
        assert_eq!(mismatches, 0, "DP fell short of the optimum");
    }

    #[test]
    fn coarser_delta_never_beats_finer() {
        for seed in 0..10u64 {
            let input = random_instance(seed, 5, 3);
            let fine = DpScheduler::with_delta(0.001).plan(&input);
            let coarse = DpScheduler::with_delta(0.1).plan(&input);
            assert!(
                input.plan_utility(&fine) + 1e-9 >= input.plan_utility(&coarse),
                "seed {seed}: finer δ lost"
            );
            // …but the coarse plan must be much cheaper to compute on
            // frontier-heavy instances (work is monotone in frontier size).
            assert!(coarse.work <= fine.work);
        }
    }

    #[test]
    fn respects_model_availability() {
        let input = ScheduleInput {
            now: at(0),
            availability: vec![at(90), at(0)],
            latencies: vec![ms(10), ms(10)],
            queries: vec![query(0, 50, vec![0.0, 0.8, 0.8, 1.0])],
        };
        let plan = DpScheduler::default().plan(&input);
        // Model 0 is busy until 90 > deadline 50; only model 1 is usable.
        assert_eq!(plan.assignments[0], ModelSet::singleton(1));
    }

    #[test]
    fn empty_buffer_is_fine() {
        let input =
            ScheduleInput { now: at(0), availability: vec![], latencies: vec![], queries: vec![] };
        let plan = DpScheduler::default().plan(&input);
        assert_eq!(plan.assignments.len(), 0);
    }

    #[test]
    fn impossible_deadlines_schedule_nothing() {
        let input = ScheduleInput {
            now: at(100),
            availability: vec![at(100)],
            latencies: vec![ms(50)],
            queries: vec![query(0, 120, vec![0.0, 1.0])],
        };
        let plan = DpScheduler::default().plan(&input);
        assert!(plan.assignments[0].is_empty());
    }

    /// Deterministic pseudo-random small instance generator for tests.
    pub(crate) fn random_instance(seed: u64, n: usize, m: usize) -> ScheduleInput {
        use rand::Rng;
        let mut rng = schemble_sim::rng::stream_rng(seed, "sched-instance");
        let latencies: Vec<SimDuration> = (0..m).map(|_| ms(rng.random_range(5..40))).collect();
        let queries = (0..n as u64)
            .map(|id| {
                // Random monotone utility vector.
                let mut utilities = vec![0.0; 1 << m];
                for set in ModelSet::all_nonempty(m) {
                    let base: f64 = set
                        .iter()
                        .map(|k| 0.3 + 0.2 * (k as f64) + rng.random_range(0.0..0.1))
                        .fold(0.0, f64::max);
                    utilities[set.0 as usize] = (base + 0.08 * set.len() as f64).min(1.0);
                }
                // Monotone repair.
                let mut masks: Vec<u32> = (1..(1u32 << m)).collect();
                masks.sort_by_key(|s| s.count_ones());
                for &mask in &masks {
                    let set = ModelSet(mask);
                    for k in set.iter() {
                        let sub = set.without(k);
                        if !sub.is_empty() {
                            utilities[mask as usize] =
                                utilities[mask as usize].max(utilities[sub.0 as usize]);
                        }
                    }
                }
                query(id, rng.random_range(20..120), utilities)
            })
            .collect();
        ScheduleInput { now: at(0), availability: vec![at(0); m], latencies, queries }
    }
}
