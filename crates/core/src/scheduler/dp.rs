//! Alg. 1: quantized dynamic-programming scheduling with Pareto pruning.
//!
//! Queries are processed in EDF order (Theorems 1–2). The DP walks the
//! queries, maintaining a frontier of partial solutions; each solution
//! carries its quantized cumulative reward `u` (in units of `δ`) and the
//! vector of per-model finish times its choices imply. Extending a solution
//! with subset `s` for query `i` is feasible iff the query's completion
//! (max over chosen models of `finish_k + T_k`) meets its deadline.
//!
//! The paper's `Comb/Time` table indexed by `(i, u)` with per-cell pruning is
//! realised sparsely: the frontier *is* the set of non-empty cells, and the
//! pruning rule is strengthened to full Pareto dominance across cells —
//! solution A dominates B when `A.u ≥ B.u` and `A.times ≤ B.times`
//! element-wise (any completion achievable from B is achievable from A at no
//! less reward, so dropping B is exact). A frontier cap bounds worst-case
//! cost; the default is far above what quantized instances reach in practice.
//!
//! The returned [`SchedulePlan::work`] charges the *dense* table cost of
//! Alg. 1 as written — `Σ_i (i/δ) · 2^m` cell updates — which the serving
//! pipeline converts into scheduling latency. The sparse frontier here is a
//! wall-clock optimisation that produces the same plan; the simulated system
//! still pays the algorithm's nominal cost, which is what makes `δ = 0.001`
//! *lose* end-to-end in Fig. 12/21 despite its better plans.
//!
//! # Hot path
//!
//! [`DpScheduler::plan_into`] is allocation-free in steady state: all working
//! memory lives in the caller's [`SchedScratch`] (finish times in a flat
//! `node*m+k` arena, node metadata with *cached* dominance keys, per-query
//! feasible-subset lists filtered once per plan), and the result is written
//! into a reusable [`SchedulePlan`]. Every optimisation preserves the plan
//! bit-for-bit against the naive formulation — the retained reference
//! implementation under `#[cfg(test)]` and the differential property test
//! pin this.

use super::input::{ScheduleInput, SchedulePlan};
use super::scratch::{FeasibleSet, NodeMeta, SchedScratch};
use super::Scheduler;
use schemble_models::ModelSet;
use schemble_sim::SimTime;

/// Alg. 1 with quantization step `delta`.
///
/// # Examples
///
/// The §I example: three 20 ms models, two queries due at 25 ms — the DP
/// splits the models so both queries are served.
///
/// ```
/// use schemble_core::scheduler::{BufferedQuery, DpScheduler, ScheduleInput, Scheduler};
/// use schemble_sim::{SimDuration, SimTime};
///
/// let query = |id| BufferedQuery {
///     id,
///     arrival: SimTime::ZERO,
///     deadline: SimTime::from_millis(25),
///     utilities: vec![0.0, 0.9, 0.9, 0.95, 0.9, 0.95, 0.95, 1.0],
///     score: 0.2,
/// };
/// let input = ScheduleInput {
///     now: SimTime::ZERO,
///     availability: vec![SimTime::ZERO; 3],
///     latencies: vec![SimDuration::from_millis(20); 3],
///     queries: vec![query(0), query(1)],
/// };
/// let plan = DpScheduler::default().plan(&input);
/// assert_eq!(plan.scheduled_count(), 2);
/// assert!(input.plan_is_feasible(&plan));
/// ```
#[derive(Debug, Clone)]
pub struct DpScheduler {
    /// Reward quantization step δ (paper default 0.01).
    pub delta: f64,
    /// Pareto-frontier cap (beam width); the exact frontier rarely exceeds a
    /// few dozen nodes on quantized instances, so the default cap is
    /// effectively exact while bounding adversarial cases.
    pub max_frontier: usize,
    /// At most this many EDF-first queries are planned per round; the rest
    /// stay buffered for the next invocation.
    pub max_queries: usize,
}

impl Default for DpScheduler {
    fn default() -> Self {
        Self { delta: 0.01, max_frontier: 64, max_queries: 24 }
    }
}

impl DpScheduler {
    /// A DP scheduler with the given δ and default caps.
    pub fn with_delta(delta: f64) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        Self { delta, ..Self::default() }
    }

    /// The quantization step `plan` actually uses. Struct-literal
    /// construction bypasses [`DpScheduler::with_delta`]'s assertion, so a
    /// zero, negative, NaN or infinite δ could otherwise divide rewards to
    /// infinity and overflow the `work` accounting; such values fall back to
    /// the default (debug builds assert instead).
    fn effective_delta(&self) -> f64 {
        if self.delta.is_finite() && self.delta > 0.0 {
            self.delta
        } else {
            Self::default().delta
        }
    }
}

impl Scheduler for DpScheduler {
    fn plan_into(&self, input: &ScheduleInput, scratch: &mut SchedScratch, out: &mut SchedulePlan) {
        debug_assert!(
            self.delta.is_finite() && self.delta > 0.0,
            "DpScheduler.delta must be positive and finite, got {}",
            self.delta
        );
        let delta = self.effective_delta();
        let n = input.queries.len();
        let m = input.m();
        out.work = 0;
        out.frontier = 0;
        out.order.clear();
        out.assignments.clear();
        out.assignments.resize(n, ModelSet::EMPTY);
        if n == 0 {
            return;
        }
        input.edf_order_into(&mut out.order);
        let planned_len = out.order.len().min(self.max_queries);
        let planned = &out.order[..planned_len];
        if planned.is_empty() {
            return;
        }
        let cap = self.max_frontier.max(1);
        // Layers 0..planned_len hold the pruned frontiers (root at 0); the
        // final layer is streamed, never materialised.
        scratch.begin_plan(planned_len);

        // Root: one node at the models' start times.
        let mut root_total = 0u128;
        for &a in &input.availability {
            let t = a.max(input.now);
            root_total += t.as_micros() as u128;
            scratch.prev_times.push(t);
        }
        scratch.layers[0].push(NodeMeta {
            u: 0,
            total: root_total,
            parent: u32::MAX,
            choice: ModelSet::EMPTY,
        });

        // Feasible-subset lists, filtered once per query instead of once per
        // frontier node: zero quantized reward is skip-equivalent, and a
        // subset whose *best-case* completion (from the start times — node
        // times only ever grow) misses the deadline can never be feasible.
        // Mask order is preserved: candidate generation order decides ties,
        // so reordering here would change plans.
        scratch.feas_bounds.push(0);
        for &qi in planned {
            let q = &input.queries[qi];
            for set in ModelSet::all_nonempty(m) {
                let quantized = (q.utilities[set.0 as usize] / delta).floor() as u64;
                if quantized == 0 {
                    continue;
                }
                let mut c_min = SimTime::ZERO;
                let mut add_micros = 0u64;
                for k in set.iter() {
                    c_min = c_min.max(scratch.prev_times[k] + input.latencies[k]);
                    add_micros += input.latencies[k].as_micros();
                }
                if c_min > q.deadline {
                    continue;
                }
                scratch.feas.push(FeasibleSet { set, quantized, add_micros });
            }
            scratch.feas_bounds.push(scratch.feas.len() as u32);
        }

        // Best terminal candidate, tracked on the fly over the streamed final
        // layer. Post-prune frontiers are sorted by (u desc, total asc) with
        // ties kept in generation order, so the old code's "pick the best of
        // the pruned last layer" always picked the first-sorted = first-
        // generated maximum — exactly what this running fold computes.
        let mut best: Option<NodeMeta> = None;
        let consider = |best: &mut Option<NodeMeta>, c: NodeMeta| match best {
            Some(b) if c.u > b.u || (c.u == b.u && c.total < b.total) => *best = Some(c),
            Some(_) => {}
            None => *best = Some(c),
        };

        for (step, &qi) in planned.iter().enumerate() {
            // `work` models the cost of Alg. 1 as written: a dense table over
            // (queries × quantized reward levels × subsets). The Pareto-
            // sparse frontier computes the same plan much faster in
            // wall-clock, but the *simulated* scheduler is charged the dense
            // cost — that is what the paper's implementation pays and what
            // makes δ = 0.001 lose end-to-end (Fig. 12/21).
            let dense_levels = (((step + 1) as f64) / delta).ceil() as u64;
            out.work += dense_levels * (1u64 << m);
            let q = &input.queries[qi];
            let feas_range =
                scratch.feas_bounds[step] as usize..scratch.feas_bounds[step + 1] as usize;
            let prev_len = scratch.layers[step].len();
            out.frontier = out.frontier.max(prev_len as u32);
            let last_step = step + 1 == planned_len;

            if last_step {
                // The final layer's only consumer is the best-node scan, so
                // stream candidates through the fold instead of materialising
                // and pruning them. An extension whose reward *strictly*
                // undershoots the current best cannot win (equal reward can
                // still win on a smaller finish-time total) — skip it before
                // touching its time row.
                for pi in 0..prev_len {
                    let pmeta = scratch.layers[step][pi];
                    let ptimes = &scratch.prev_times[pi * m..(pi + 1) * m];
                    scratch.stats.nodes_expanded += 1;
                    consider(
                        &mut best,
                        NodeMeta { parent: pi as u32, choice: ModelSet::EMPTY, ..pmeta },
                    );
                    for fi in feas_range.clone() {
                        let fs = scratch.feas[fi];
                        if best.as_ref().is_some_and(|b| pmeta.u + fs.quantized < b.u) {
                            continue;
                        }
                        let mut completion = SimTime::ZERO;
                        for k in fs.set.iter() {
                            completion = completion.max(ptimes[k] + input.latencies[k]);
                        }
                        if completion > q.deadline {
                            continue;
                        }
                        scratch.stats.nodes_expanded += 1;
                        consider(
                            &mut best,
                            NodeMeta {
                                u: pmeta.u + fs.quantized,
                                total: pmeta.total + fs.add_micros as u128,
                                parent: pi as u32,
                                choice: fs.set,
                            },
                        );
                    }
                }
                continue;
            }

            // Candidate generation: for every frontier node, a skip-copy
            // (cell copy in Alg. 1) plus one candidate per feasible subset.
            // Times are copied row-to-row in the arena; `total` is bumped by
            // the precomputed per-subset increment.
            scratch.cand.clear();
            scratch.cand_times.clear();
            for pi in 0..prev_len {
                let pmeta = scratch.layers[step][pi];
                let row = pi * m;
                scratch.stats.nodes_expanded += 1;
                scratch.cand.push(NodeMeta { parent: pi as u32, choice: ModelSet::EMPTY, ..pmeta });
                let (dst, src) = (&mut scratch.cand_times, &scratch.prev_times);
                dst.extend_from_slice(&src[row..row + m]);
                for fi in feas_range.clone() {
                    let fs = scratch.feas[fi];
                    let ptimes = &scratch.prev_times[row..row + m];
                    let mut completion = SimTime::ZERO;
                    for k in fs.set.iter() {
                        completion = completion.max(ptimes[k] + input.latencies[k]);
                    }
                    if completion > q.deadline {
                        continue;
                    }
                    scratch.stats.nodes_expanded += 1;
                    scratch.cand.push(NodeMeta {
                        u: pmeta.u + fs.quantized,
                        total: pmeta.total + fs.add_micros as u128,
                        parent: pi as u32,
                        choice: fs.set,
                    });
                    let base = scratch.cand_times.len();
                    let (dst, src) = (&mut scratch.cand_times, &scratch.prev_times);
                    dst.extend_from_slice(&src[row..row + m]);
                    for k in fs.set.iter() {
                        scratch.cand_times[base + k] = ptimes[k] + input.latencies[k];
                    }
                }
            }

            prune_into_next_layer(scratch, step, m, cap);
        }

        // Backtrack choices through the layers.
        let best = best.expect("final layer has at least the skip-copies");
        out.assignments[planned[planned_len - 1]] = best.choice;
        let mut idx = best.parent as usize;
        for layer in (1..planned_len).rev() {
            let node = scratch.layers[layer][idx];
            out.assignments[planned[layer - 1]] = node.choice;
            idx = node.parent as usize;
        }
    }

    fn name(&self) -> String {
        format!("DP(δ={})", self.delta)
    }
}

/// Pareto pruning of the candidate layer into `layers[step + 1]` (metadata)
/// and the recompacted `prev_times` arena (time rows), capped at `cap`.
///
/// Candidates are visited in (reward descending, cached total-micros
/// ascending) order so dominators come first, making the scan
/// O(kept · candidates); a candidate is dropped iff an already-kept node has
/// `u` ≥ and all times ≤ element-wise. Ties on (u, total) are resolved by
/// generation order: the sort breaks them on candidate index, so the
/// earliest-generated of equal nodes is kept and the later ones are dropped
/// as dominated — the same rule the pre-refactor stable sort implemented
/// implicitly.
fn prune_into_next_layer(scratch: &mut SchedScratch, step: usize, m: usize, cap: usize) {
    let SchedScratch { prev_times, cand_times, cand, layers, perm, stats, .. } = scratch;
    perm.clear();
    perm.extend(0..cand.len() as u32);
    perm.sort_unstable_by(|&a, &b| {
        let (ca, cb) = (&cand[a as usize], &cand[b as usize]);
        cb.u.cmp(&ca.u).then(ca.total.cmp(&cb.total)).then(a.cmp(&b))
    });
    let (_prev, next) = layers.split_at_mut(step + 1);
    let kept_meta = &mut next[0];
    debug_assert!(kept_meta.is_empty(), "begin_plan must have cleared the layer");
    prev_times.clear();
    for &ci in perm.iter() {
        let c = cand[ci as usize];
        let ctimes = &cand_times[ci as usize * m..(ci as usize + 1) * m];
        let dominated = kept_meta.iter().enumerate().any(|(kj, k)| {
            k.u >= c.u && prev_times[kj * m..(kj + 1) * m].iter().zip(ctimes).all(|(a, b)| a <= b)
        });
        if dominated {
            continue;
        }
        kept_meta.push(c);
        prev_times.extend_from_slice(ctimes);
        if kept_meta.len() >= cap {
            break;
        }
    }
    stats.nodes_kept += kept_meta.len() as u64;
}

/// The pre-refactor implementation, retained verbatim as the differential
/// oracle: `plan_into` must produce byte-identical plans.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    #[derive(Debug, Clone)]
    struct Node {
        u: u64,
        times: Vec<SimTime>,
        parent: usize,
        choice: ModelSet,
    }

    fn total_micros(times: &[SimTime]) -> u128 {
        times.iter().map(|t| t.as_micros() as u128).sum()
    }

    fn prune(nodes: &mut Vec<Node>, cap: usize) {
        nodes.sort_by(|a, b| {
            b.u.cmp(&a.u).then_with(|| total_micros(&a.times).cmp(&total_micros(&b.times)))
        });
        let mut kept: Vec<Node> = Vec::with_capacity(nodes.len().min(cap));
        'candidates: for node in nodes.drain(..) {
            for k in &kept {
                if k.u >= node.u && k.times.iter().zip(&node.times).all(|(a, b)| a <= b) {
                    continue 'candidates;
                }
            }
            kept.push(node);
            if kept.len() >= cap {
                break;
            }
        }
        *nodes = kept;
    }

    pub(crate) fn plan(sched: &DpScheduler, input: &ScheduleInput) -> SchedulePlan {
        let n = input.queries.len();
        if n == 0 {
            return SchedulePlan::empty(0);
        }
        let m = input.m();
        let order = input.edf_order();
        let planned: Vec<usize> = order.iter().copied().take(sched.max_queries).collect();

        let start_times: Vec<SimTime> =
            input.availability.iter().map(|&a| a.max(input.now)).collect();
        let root = Node { u: 0, times: start_times, parent: usize::MAX, choice: ModelSet::EMPTY };

        let mut layers: Vec<Vec<Node>> = Vec::with_capacity(planned.len() + 1);
        layers.push(vec![root]);
        let mut work = 0u64;

        for (step, &qi) in planned.iter().enumerate() {
            let dense_levels = (((step + 1) as f64) / sched.delta).ceil() as u64;
            work += dense_levels * (1u64 << m);
            let q = &input.queries[qi];
            let prev = layers.last().expect("non-empty layers");
            let mut next: Vec<Node> = Vec::with_capacity(prev.len() * 2);
            for (pi, node) in prev.iter().enumerate() {
                next.push(Node {
                    u: node.u,
                    times: node.times.clone(),
                    parent: pi,
                    choice: ModelSet::EMPTY,
                });
                for set in ModelSet::all_nonempty(m) {
                    let reward = q.utilities[set.0 as usize];
                    let quantized = (reward / sched.delta).floor() as u64;
                    if quantized == 0 {
                        continue;
                    }
                    let mut times = node.times.clone();
                    let mut completion = SimTime::ZERO;
                    for k in set.iter() {
                        let finish = times[k] + input.latencies[k];
                        times[k] = finish;
                        completion = completion.max(finish);
                    }
                    if completion > q.deadline {
                        continue;
                    }
                    next.push(Node { u: node.u + quantized, times, parent: pi, choice: set });
                }
            }
            prune(&mut next, sched.max_frontier);
            layers.push(next);
        }

        let last = layers.last().expect("non-empty layers");
        let mut best = 0usize;
        for (i, node) in last.iter().enumerate() {
            let better = node.u > last[best].u
                || (node.u == last[best].u
                    && total_micros(&node.times) < total_micros(&last[best].times));
            if better {
                best = i;
            }
        }

        let mut assignments = vec![ModelSet::EMPTY; n];
        let mut idx = best;
        for layer in (1..layers.len()).rev() {
            let node = &layers[layer][idx];
            assignments[planned[layer - 1]] = node.choice;
            idx = node.parent;
        }

        SchedulePlan { assignments, order, work, frontier: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::brute::optimal_plan;
    use crate::scheduler::input::BufferedQuery;
    use proptest::prelude::*;
    use schemble_sim::SimDuration;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn query(id: u64, deadline_ms: u64, utilities: Vec<f64>) -> BufferedQuery {
        BufferedQuery { id, arrival: at(0), deadline: at(deadline_ms), utilities, score: 0.5 }
    }

    #[test]
    fn splits_models_across_two_easy_queries() {
        // The paper's §I example: two easy queries, three models. Running the
        // full set on query 1 would block query 2; splitting processes both.
        let utilities = vec![0.0, 0.9, 0.9, 0.92, 0.9, 0.92, 0.92, 1.0];
        let input = ScheduleInput {
            now: at(0),
            availability: vec![at(0); 3],
            latencies: vec![ms(20), ms(20), ms(20)],
            queries: vec![query(0, 25, utilities.clone()), query(1, 25, utilities)],
        };
        let plan = DpScheduler::default().plan(&input);
        assert_eq!(plan.scheduled_count(), 2, "both queries must be served");
        assert!(input.plan_is_feasible(&plan));
        // Neither query can take more than the deadline allows (one round).
        let total_models: usize = plan.assignments.iter().map(|s| s.len()).sum();
        assert_eq!(total_models, 3, "all three models should be used exactly once");
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        // Deterministic sweep of small instances; DP with tiny δ must equal
        // the exact optimum.
        let mut mismatches = 0;
        for seed in 0..20u64 {
            let input = random_instance(seed, 4, 2);
            let dp = DpScheduler { delta: 1e-4, max_frontier: 4096, max_queries: 24 }.plan(&input);
            let best = optimal_plan(&input);
            let dp_u = input.plan_utility(&dp);
            let opt_u = input.plan_utility(&best);
            assert!(input.plan_is_feasible(&dp));
            if (dp_u - opt_u).abs() > 1e-6 {
                mismatches += 1;
                eprintln!("seed {seed}: dp {dp_u} vs opt {opt_u}");
            }
        }
        assert_eq!(mismatches, 0, "DP fell short of the optimum");
    }

    #[test]
    fn coarser_delta_never_beats_finer() {
        for seed in 0..10u64 {
            let input = random_instance(seed, 5, 3);
            let fine = DpScheduler::with_delta(0.001).plan(&input);
            let coarse = DpScheduler::with_delta(0.1).plan(&input);
            assert!(
                input.plan_utility(&fine) + 1e-9 >= input.plan_utility(&coarse),
                "seed {seed}: finer δ lost"
            );
            // …but the coarse plan must be much cheaper to compute on
            // frontier-heavy instances (work is monotone in frontier size).
            assert!(coarse.work <= fine.work);
        }
    }

    #[test]
    fn respects_model_availability() {
        let input = ScheduleInput {
            now: at(0),
            availability: vec![at(90), at(0)],
            latencies: vec![ms(10), ms(10)],
            queries: vec![query(0, 50, vec![0.0, 0.8, 0.8, 1.0])],
        };
        let plan = DpScheduler::default().plan(&input);
        // Model 0 is busy until 90 > deadline 50; only model 1 is usable.
        assert_eq!(plan.assignments[0], ModelSet::singleton(1));
    }

    #[test]
    fn empty_buffer_is_fine() {
        let input =
            ScheduleInput { now: at(0), availability: vec![], latencies: vec![], queries: vec![] };
        let plan = DpScheduler::default().plan(&input);
        assert_eq!(plan.assignments.len(), 0);
    }

    #[test]
    fn impossible_deadlines_schedule_nothing() {
        let input = ScheduleInput {
            now: at(100),
            availability: vec![at(100)],
            latencies: vec![ms(50)],
            queries: vec![query(0, 120, vec![0.0, 1.0])],
        };
        let plan = DpScheduler::default().plan(&input);
        assert!(plan.assignments[0].is_empty());
    }

    #[test]
    fn matches_reference_on_deterministic_sweep() {
        // Differential check over a seed sweep covering several shapes and
        // both paper-range and extreme δ values.
        for seed in 0..40u64 {
            for &(n, m) in &[(1usize, 1usize), (3, 2), (5, 3), (8, 4), (6, 5)] {
                let input = random_instance(seed, n, m);
                for delta in [0.01, 0.1, 0.001] {
                    let sched = DpScheduler { delta, ..DpScheduler::default() };
                    assert_eq!(
                        sched.plan(&input),
                        reference::plan(&sched, &input),
                        "seed {seed} n {n} m {m} δ {delta}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_reference_under_tight_frontier_and_query_caps() {
        // Caps change which nodes survive; the tie-breaking rules must still
        // agree exactly.
        for seed in 0..25u64 {
            let input = random_instance(seed, 7, 3);
            for (max_frontier, max_queries) in [(1, 24), (2, 24), (5, 4), (64, 2), (3, 1)] {
                let sched = DpScheduler { delta: 0.05, max_frontier, max_queries };
                assert_eq!(
                    sched.plan(&input),
                    reference::plan(&sched, &input),
                    "seed {seed} cap {max_frontier} max_q {max_queries}"
                );
            }
        }
    }

    proptest! {
        /// The scratch-based DP is byte-identical to the reference on random
        /// instances: assignments, order and `work` all match.
        #[test]
        fn differential_plan_equality(
            seed in 0u64..10_000,
            n in 1usize..=8,
            m in 1usize..=6,
            delta_idx in 0usize..4,
            max_frontier in 1usize..=64,
        ) {
            let delta = [0.01, 0.05, 0.001, 0.2][delta_idx];
            let input = random_instance(seed, n, m);
            let sched = DpScheduler { delta, max_frontier, max_queries: 24 };
            let fast = sched.plan(&input);
            let slow = reference::plan(&sched, &input);
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn scratch_reuse_leaks_no_state() {
        // Two consecutive plans through ONE scratch must equal two plans
        // through fresh scratches, for differently-shaped inputs in both
        // orders (shrinking and growing n and m across calls).
        let sched = DpScheduler::default();
        let inputs: Vec<ScheduleInput> = vec![
            random_instance(3, 8, 4),
            random_instance(9, 2, 6),
            random_instance(1, 5, 1),
            random_instance(7, 1, 3),
        ];
        let mut shared = SchedScratch::new();
        let mut out = SchedulePlan::empty(0);
        for (i, a) in inputs.iter().enumerate() {
            for b in &inputs[i..] {
                for input in [a, b, a] {
                    sched.plan_into(input, &mut shared, &mut out);
                    let mut fresh = SchedScratch::new();
                    let mut fresh_out = SchedulePlan::empty(0);
                    sched.plan_into(input, &mut fresh, &mut fresh_out);
                    assert_eq!(out, fresh_out, "scratch state leaked between plans");
                }
            }
        }
    }

    #[test]
    fn invalid_delta_falls_back_to_default() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let sched = DpScheduler { delta: bad, ..DpScheduler::default() };
            assert_eq!(sched.effective_delta(), DpScheduler::default().delta, "delta {bad}");
        }
        let sched = DpScheduler { delta: 0.25, ..DpScheduler::default() };
        assert_eq!(sched.effective_delta(), 0.25);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "delta must be positive and finite")]
    fn invalid_delta_asserts_in_debug_builds() {
        let sched = DpScheduler { delta: 0.0, ..DpScheduler::default() };
        let _ = sched.plan(&random_instance(0, 2, 2));
    }

    #[test]
    fn steady_state_stats_are_reproducible() {
        // Same input through a warm scratch yields the same counters — the
        // property bench_dp's CI gate relies on.
        let sched = DpScheduler::default();
        let input = random_instance(11, 6, 3);
        let mut scratch = SchedScratch::new();
        let mut out = SchedulePlan::empty(0);
        sched.plan_into(&input, &mut scratch, &mut out);
        let first = scratch.stats();
        assert!(first.nodes_expanded > 0 && first.nodes_kept > 0);
        sched.plan_into(&input, &mut scratch, &mut out);
        assert_eq!(scratch.stats(), first);
    }

    /// Deterministic pseudo-random small instance generator for tests.
    pub(crate) fn random_instance(seed: u64, n: usize, m: usize) -> ScheduleInput {
        use rand::Rng;
        let mut rng = schemble_sim::rng::stream_rng(seed, "sched-instance");
        let latencies: Vec<SimDuration> = (0..m).map(|_| ms(rng.random_range(5..40))).collect();
        let queries = (0..n as u64)
            .map(|id| {
                // Random monotone utility vector.
                let mut utilities = vec![0.0; 1 << m];
                for set in ModelSet::all_nonempty(m) {
                    let base: f64 = set
                        .iter()
                        .map(|k| 0.3 + 0.2 * (k as f64) + rng.random_range(0.0..0.1))
                        .fold(0.0, f64::max);
                    utilities[set.0 as usize] = (base + 0.08 * set.len() as f64).min(1.0);
                }
                // Monotone repair.
                let mut masks: Vec<u32> = (1..(1u32 << m)).collect();
                masks.sort_by_key(|s| s.count_ones());
                for &mask in &masks {
                    let set = ModelSet(mask);
                    for k in set.iter() {
                        let sub = set.without(k);
                        if !sub.is_empty() {
                            utilities[mask as usize] =
                                utilities[mask as usize].max(utilities[sub.0 as usize]);
                        }
                    }
                }
                query(id, rng.random_range(20..120), utilities)
            })
            .collect();
        ScheduleInput { now: at(0), availability: vec![at(0); m], latencies, queries }
    }
}
