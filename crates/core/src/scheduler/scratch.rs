//! Reusable scheduler scratch memory.
//!
//! Re-planning happens on *every* arrival and task completion, so the
//! scheduler's working memory is the hottest allocation site in the whole
//! system. [`SchedScratch`] owns every buffer a [`Scheduler`](super::Scheduler)
//! needs — finish-time arenas, per-layer node storage, feasible-subset lists,
//! sort permutations — and is held by the engine across invocations, so a
//! steady-state `plan_into` call allocates nothing: capacity grown on the
//! first few plans is recycled forever after (`bench_dp --features
//! bench-alloc` pins allocations/plan at zero).
//!
//! The finish-time storage is a flat structure-of-arrays arena: node `i`'s
//! per-model times live at `times[i * m .. (i + 1) * m]` instead of one
//! `Vec<SimTime>` per node. Node metadata (reward, cached dominance key,
//! parent link, subset choice) lives in parallel `NodeMeta` vectors — the
//! prune sort permutes small `u32` indices and compares precomputed integer
//! keys, never touching the time rows.

use schemble_models::ModelSet;
use schemble_sim::SimTime;

/// Deterministic counters describing the last `plan_into` call.
///
/// These depend only on the problem instance (never on wall-clock or
/// allocator state), which is what lets `bench_dp` gate them tightly in CI
/// while wall-clock numbers get a wide tolerance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpStats {
    /// Candidate nodes generated across all layers: skip-copies plus
    /// extensions that passed the per-node feasibility checks.
    pub nodes_expanded: u64,
    /// Frontier nodes surviving Pareto pruning, summed over layers.
    pub nodes_kept: u64,
}

/// One DP frontier node, minus its finish-time row (which lives in the
/// arena at `row_index * m`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeMeta {
    /// Quantized cumulative reward in δ units.
    pub u: u64,
    /// Cached dominance key: Σ_k finish-time microseconds. Maintained
    /// incrementally (extending by subset `s` adds Σ_{k∈s} latency_k), so
    /// the prune comparator never walks a time row.
    pub total: u128,
    /// Index of the parent node in the previous layer.
    pub parent: u32,
    /// Subset chosen for the query of this layer.
    pub choice: ModelSet,
}

/// A feasible subset for one query, precomputed once per plan.
///
/// Subsets whose quantized reward is zero, or whose *best-case* completion
/// (from the plan's start times) already overshoots the deadline, are
/// filtered here — once per query instead of once per frontier node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FeasibleSet {
    pub set: ModelSet,
    /// `⌊reward / δ⌋`, guaranteed non-zero.
    pub quantized: u64,
    /// Σ_{k∈set} latency_k in microseconds — the increment this extension
    /// adds to a node's `total` dominance key.
    pub add_micros: u64,
}

/// Reusable working memory for [`Scheduler::plan_into`](super::Scheduler).
///
/// One scratch serves any scheduler and any instance size; buffers grow to
/// the high-water mark and stay there. A scratch carries no decision state
/// between calls — two consecutive plans through one scratch are identical
/// to two plans through fresh scratches (pinned by `dp::tests`).
#[derive(Debug, Default)]
pub struct SchedScratch {
    /// Greedy's mutable availability vector.
    pub(crate) avail: Vec<SimTime>,
    /// Pruned current-layer finish times, row `i` = node `i` (SoA arena).
    pub(crate) prev_times: Vec<SimTime>,
    /// Candidate finish times for the layer being built, row `j` = cand `j`.
    pub(crate) cand_times: Vec<SimTime>,
    /// Candidate metadata for the layer being built.
    pub(crate) cand: Vec<NodeMeta>,
    /// Pruned node metadata per layer, kept for backtracking. Inner vectors
    /// are recycled between plans.
    pub(crate) layers: Vec<Vec<NodeMeta>>,
    /// Sort permutation over candidate indices.
    pub(crate) perm: Vec<u32>,
    /// Concatenated per-query feasible-subset lists…
    pub(crate) feas: Vec<FeasibleSet>,
    /// …and the offset of each planned query's slice (`len = planned + 1`).
    pub(crate) feas_bounds: Vec<u32>,
    /// Counters from the most recent `plan_into` call.
    pub stats: DpStats,
}

impl SchedScratch {
    /// A scratch with no warmed capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters from the most recent `plan_into` call.
    pub fn stats(&self) -> DpStats {
        self.stats
    }

    /// Ensures `layers[0..n]` exist (recycled, not reallocated) and clears
    /// per-plan state. Called at the top of every DP plan.
    pub(crate) fn begin_plan(&mut self, n_layers: usize) {
        self.stats = DpStats::default();
        while self.layers.len() < n_layers {
            self.layers.push(Vec::new());
        }
        for layer in &mut self.layers[..n_layers] {
            layer.clear();
        }
        self.prev_times.clear();
        self.cand_times.clear();
        self.cand.clear();
        self.perm.clear();
        self.feas.clear();
        self.feas_bounds.clear();
    }
}
