//! Greedy scheduling baselines (Exp-4).
//!
//! "Greedily select the model set with the highest rewards that could
//! complete by the deadline for every query", visiting queries in EDF, FIFO
//! or SJF order. The greedy choice ignores the remaining buffer, which is
//! exactly why it "incurs deadline misses more easily when queries arrive
//! quickly" — the DP exists to fix this.

use super::input::{ScheduleInput, SchedulePlan};
use super::scratch::SchedScratch;
use super::Scheduler;
use schemble_models::ModelSet;
use schemble_sim::SimTime;

/// Queue-visiting order for the greedy scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOrder {
    /// Earliest deadline first.
    Edf,
    /// First in, first out (earliest arrival).
    Fifo,
    /// Shortest job first — "the query with the smallest estimated
    /// discrepancy score first" (§VIII Exp-4).
    Sjf,
}

/// Greedy per-query maximum-reward selection under a queue order.
#[derive(Debug, Clone, Copy)]
pub struct GreedyScheduler {
    order: QueueOrder,
}

impl GreedyScheduler {
    /// A greedy scheduler visiting queries in `order`.
    pub fn new(order: QueueOrder) -> Self {
        Self { order }
    }

    #[cfg(test)]
    fn visit_order(&self, input: &ScheduleInput) -> Vec<usize> {
        let mut idx = Vec::new();
        self.visit_order_into(input, &mut idx);
        idx
    }

    fn visit_order_into(&self, input: &ScheduleInput, out: &mut Vec<usize>) {
        match self.order {
            QueueOrder::Edf => input.edf_order_into(out),
            QueueOrder::Fifo => {
                out.clear();
                out.extend(0..input.queries.len());
                out.sort_by_key(|&i| {
                    (input.queries[i].arrival, input.queries[i].deadline, input.queries[i].id)
                });
            }
            QueueOrder::Sjf => {
                out.clear();
                out.extend(0..input.queries.len());
                out.sort_by(|&a, &b| {
                    input.queries[a]
                        .score
                        .partial_cmp(&input.queries[b].score)
                        .expect("NaN score")
                        .then_with(|| input.queries[a].id.cmp(&input.queries[b].id))
                });
            }
        }
    }
}

impl Scheduler for GreedyScheduler {
    fn plan_into(&self, input: &ScheduleInput, scratch: &mut SchedScratch, out: &mut SchedulePlan) {
        let n = input.queries.len();
        let m = input.m();
        self.visit_order_into(input, &mut out.order);
        scratch.avail.clear();
        scratch.avail.extend(input.availability.iter().map(|&a| a.max(input.now)));
        let avail = &mut scratch.avail;
        out.assignments.clear();
        out.assignments.resize(n, ModelSet::EMPTY);
        out.frontier = 0;
        let mut work = 0u64;
        for &qi in &out.order {
            let q = &input.queries[qi];
            let mut best_set = ModelSet::EMPTY;
            let mut best_reward = 0.0f64;
            let mut best_completion = SimTime(u64::MAX);
            for set in ModelSet::all_nonempty(m) {
                work += 1;
                let mut completion = SimTime::ZERO;
                for k in set.iter() {
                    completion = completion.max(avail[k] + input.latencies[k]);
                }
                if completion > q.deadline {
                    continue;
                }
                let reward = q.utilities[set.0 as usize];
                let better = reward > best_reward + 1e-12
                    || ((reward - best_reward).abs() <= 1e-12 && completion < best_completion);
                if better {
                    best_set = set;
                    best_reward = reward;
                    best_completion = completion;
                }
            }
            if !best_set.is_empty() {
                for k in best_set.iter() {
                    avail[k] += input.latencies[k];
                }
                out.assignments[qi] = best_set;
            }
        }
        out.work = work;
    }

    fn name(&self) -> String {
        match self.order {
            QueueOrder::Edf => "Greedy+EDF".to_string(),
            QueueOrder::Fifo => "Greedy+FIFO".to_string(),
            QueueOrder::Sjf => "Greedy+SJF".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::input::BufferedQuery;
    use schemble_sim::SimDuration;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn input() -> ScheduleInput {
        ScheduleInput {
            now: at(0),
            availability: vec![at(0), at(0)],
            latencies: vec![ms(10), ms(30)],
            queries: vec![
                BufferedQuery {
                    id: 0,
                    arrival: at(0),
                    deadline: at(100),
                    utilities: vec![0.0, 0.6, 0.7, 1.0],
                    score: 0.9,
                },
                BufferedQuery {
                    id: 1,
                    arrival: at(2),
                    deadline: at(40),
                    utilities: vec![0.0, 0.6, 0.7, 1.0],
                    score: 0.1,
                },
            ],
        }
    }

    #[test]
    fn greedy_takes_best_feasible_set_per_query() {
        let plan = GreedyScheduler::new(QueueOrder::Edf).plan(&input());
        // EDF visits query 1 first; full set completes at 30 ≤ 40 → takes it.
        assert_eq!(plan.assignments[1], ModelSet::full(2));
        assert!(input().plan_is_feasible(&plan));
    }

    #[test]
    fn orders_differ() {
        let input = input();
        assert_eq!(GreedyScheduler::new(QueueOrder::Edf).visit_order(&input), vec![1, 0]);
        assert_eq!(GreedyScheduler::new(QueueOrder::Fifo).visit_order(&input), vec![0, 1]);
        assert_eq!(GreedyScheduler::new(QueueOrder::Sjf).visit_order(&input), vec![1, 0]);
    }

    #[test]
    fn greedy_myopia_documented() {
        // The defining failure: greedy gives the first query everything and
        // starves the second; DP shares. Construct the §I two-easy-queries
        // situation and observe greedy scheduling strictly fewer queries.
        let utilities = vec![0.0, 0.9, 0.9, 0.92, 0.9, 0.92, 0.92, 1.0];
        let mk = |id| BufferedQuery {
            id,
            arrival: at(id),
            deadline: at(25),
            utilities: utilities.clone(),
            score: 0.1,
        };
        let input = ScheduleInput {
            now: at(0),
            availability: vec![at(0); 3],
            latencies: vec![ms(20); 3],
            queries: vec![mk(0), mk(1)],
        };
        let greedy = GreedyScheduler::new(QueueOrder::Fifo).plan(&input);
        // Greedy grabs the full set for query 0, leaving query 1 infeasible.
        assert_eq!(greedy.assignments[0], ModelSet::full(3));
        assert!(greedy.assignments[1].is_empty());
        let dp = crate::scheduler::DpScheduler::default().plan(&input);
        assert!(
            input.plan_utility(&dp) > input.plan_utility(&greedy),
            "DP must beat the myopic greedy here"
        );
    }

    #[test]
    fn infeasible_queries_are_skipped() {
        let mut inp = input();
        inp.queries[1].deadline = at(5); // nothing fits
        let plan = GreedyScheduler::new(QueueOrder::Edf).plan(&inp);
        assert!(plan.assignments[1].is_empty());
        assert!(!plan.assignments[0].is_empty());
    }
}
