//! The task scheduler (§VI).
//!
//! A scheduler receives the current **query buffer** — arrived queries whose
//! inference tasks have not started — plus each base model's earliest
//! availability, and decides (a) a model subset per query and (b) the
//! execution order. Theorem 1 lets the order be *consistent* across models,
//! and Theorem 2 makes Earliest-Deadline-First optimal once sets are fixed
//! and feasible, so every scheduler here emits EDF-ordered plans and the
//! decision reduces to subset selection.
//!
//! * [`dp::DpScheduler`] — Alg. 1: quantized dynamic programming over
//!   (queries × cumulative reward) with Pareto pruning of per-model
//!   finish-time vectors. `δ` trades plan quality against scheduling cost
//!   (Exp-4 / Fig. 21).
//! * [`greedy::GreedyScheduler`] — the Greedy+EDF/FIFO/SJF baselines of
//!   Exp-4: pick the highest-reward feasible set per query in queue order,
//!   ignoring the rest of the buffer.
//! * [`brute::optimal_plan`] — exponential exact solver used to validate the
//!   DP on small instances.

pub mod anytime;
pub mod brute;
pub mod dp;
pub mod greedy;
pub mod input;
pub mod scratch;

pub use anytime::{gain_order_into, AnytimeScheduler};
pub use dp::DpScheduler;
pub use greedy::{GreedyScheduler, QueueOrder};
pub use input::{BufferedQuery, ScheduleInput, SchedulePlan};
pub use scratch::{DpStats, SchedScratch};

/// A buffer-scheduling algorithm.
///
/// `Send + Sync` is a supertrait requirement so one boxed scheduler inside
/// a `SchembleConfig` can be planned against concurrently from every shard
/// of a sharded serve run (`plan_into` takes `&self`; all state lives in
/// the caller's scratch).
pub trait Scheduler: Send + Sync {
    /// Produces a plan for the buffered queries, writing it into `out` and
    /// working out of `scratch`.
    ///
    /// This is the hot path: the engine holds one [`SchedScratch`] and one
    /// [`SchedulePlan`] for the whole run, so a steady-state invocation
    /// allocates nothing. `out` is fully overwritten — no state carries over
    /// from its previous contents, and none may carry over through `scratch`
    /// (schedulers must produce identical plans through a shared and a fresh
    /// scratch).
    fn plan_into(&self, input: &ScheduleInput, scratch: &mut SchedScratch, out: &mut SchedulePlan);

    /// Convenience wrapper around [`Scheduler::plan_into`] that allocates
    /// fresh buffers per call. Fine for experiments and tests; the serving
    /// hot path uses `plan_into` directly.
    fn plan(&self, input: &ScheduleInput) -> SchedulePlan {
        let mut scratch = SchedScratch::new();
        let mut out = SchedulePlan::empty(0);
        self.plan_into(input, &mut scratch, &mut out);
        out
    }

    /// Short label for experiment output.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_models::ModelSet;
    use schemble_sim::{SimDuration, SimTime};

    /// Shared fixture: two fast models, three queries with staggered
    /// deadlines that cannot all take the full set.
    pub(crate) fn tight_instance() -> ScheduleInput {
        let latencies = vec![SimDuration::from_millis(10), SimDuration::from_millis(20)];
        // Utility vectors indexed by subset mask: [∅, {0}, {1}, {0,1}].
        let utilities = vec![0.0, 0.6, 0.7, 1.0];
        let queries = (0..3)
            .map(|i| BufferedQuery {
                id: i,
                arrival: SimTime::ZERO,
                deadline: SimTime::from_millis(25 + 10 * i),
                utilities: utilities.clone(),
                score: 0.5,
            })
            .collect();
        ScheduleInput {
            now: SimTime::ZERO,
            availability: vec![SimTime::ZERO; 2],
            latencies,
            queries,
        }
    }

    #[test]
    fn dp_beats_or_matches_greedy_on_tight_instance() {
        let input = tight_instance();
        let dp = DpScheduler::default().plan(&input);
        let greedy = GreedyScheduler::new(QueueOrder::Edf).plan(&input);
        let dp_u = input.plan_utility(&dp);
        let greedy_u = input.plan_utility(&greedy);
        assert!(dp_u >= greedy_u - 1e-9, "dp {dp_u} vs greedy {greedy_u}");
    }

    #[test]
    fn plans_respect_feasibility() {
        let input = tight_instance();
        for plan in [
            DpScheduler::default().plan(&input),
            GreedyScheduler::new(QueueOrder::Edf).plan(&input),
            GreedyScheduler::new(QueueOrder::Fifo).plan(&input),
        ] {
            assert!(input.plan_is_feasible(&plan), "infeasible plan emitted");
        }
    }

    #[test]
    fn full_sets_when_capacity_allows() {
        // One query, loose deadline: every scheduler should run everything.
        let mut input = tight_instance();
        input.queries.truncate(1);
        input.queries[0].deadline = SimTime::from_millis(1000);
        let dp = DpScheduler::default().plan(&input);
        assert_eq!(dp.assignments[0], ModelSet::full(2));
    }
}
