//! Scheduling problem instances and plans.

use schemble_models::ModelSet;
use schemble_sim::{SimDuration, SimTime};

/// One query waiting in the buffer.
#[derive(Debug, Clone)]
pub struct BufferedQuery {
    /// Query id (for dispatching).
    pub id: u64,
    /// Arrival instant (FIFO ordering input).
    pub arrival: SimTime,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Reward per subset, indexed by `ModelSet.0` (`utilities[0]` = ∅ = 0).
    pub utilities: Vec<f64>,
    /// Predicted discrepancy score (SJF ordering input).
    pub score: f64,
}

/// A local scheduling subproblem: the buffer at one instant.
#[derive(Debug, Clone)]
pub struct ScheduleInput {
    /// Current time.
    pub now: SimTime,
    /// Earliest instant each base model can start a new task
    /// ("base models' remained execution time" in Alg. 1).
    pub availability: Vec<SimTime>,
    /// Planned execution time of each base model (`{T_k}` in Alg. 1).
    pub latencies: Vec<SimDuration>,
    /// The buffered queries.
    pub queries: Vec<BufferedQuery>,
}

impl ScheduleInput {
    /// Ensemble size.
    pub fn m(&self) -> usize {
        self.latencies.len()
    }

    /// Query indices sorted by deadline (EDF), ties by arrival then id.
    pub fn edf_order(&self) -> Vec<usize> {
        let mut idx = Vec::new();
        self.edf_order_into(&mut idx);
        idx
    }

    /// [`ScheduleInput::edf_order`] into a reusable buffer (hot path: the
    /// scheduler re-derives the order on every re-plan).
    ///
    /// The buffer is usually already deadline-sorted — the engine builds it
    /// in ascending-id order and deadlines typically grow with arrival (any
    /// constant-deadline policy guarantees it) — so the common case is
    /// detected with one linear scan and the sort skipped. When a sort is
    /// needed it is stable, so the output is identical either way.
    pub fn edf_order_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..self.queries.len());
        let key = |q: &BufferedQuery| (q.deadline, q.arrival, q.id);
        if !self.queries.windows(2).all(|w| key(&w[0]) <= key(&w[1])) {
            out.sort_by_key(|&i| key(&self.queries[i]));
        }
    }

    /// Simulates a plan under consistent EDF order and returns per-query
    /// completion times (`None` for unscheduled queries).
    pub fn completions(&self, plan: &SchedulePlan) -> Vec<Option<SimTime>> {
        let mut avail = self.availability.clone();
        let mut out = vec![None; self.queries.len()];
        for &qi in &plan.order {
            let set = plan.assignments[qi];
            if set.is_empty() {
                continue;
            }
            let mut completion = SimTime::ZERO;
            for k in set.iter() {
                let finish = avail[k].max(self.now) + self.latencies[k];
                avail[k] = finish;
                completion = completion.max(finish);
            }
            out[qi] = Some(completion);
        }
        out
    }

    /// True if every scheduled query completes by its deadline.
    pub fn plan_is_feasible(&self, plan: &SchedulePlan) -> bool {
        self.completions(plan)
            .iter()
            .zip(&self.queries)
            .all(|(c, q)| c.is_none_or(|t| t <= q.deadline))
    }

    /// Total (unquantized) utility a plan collects.
    pub fn plan_utility(&self, plan: &SchedulePlan) -> f64 {
        plan.assignments.iter().zip(&self.queries).map(|(set, q)| q.utilities[set.0 as usize]).sum()
    }
}

/// A scheduler's output.
///
/// `PartialEq`/`Eq` compare the full decision (assignments, order and
/// `work`) — the granularity at which the DP refactor is differential-tested
/// against its reference implementation. `frontier` is introspection
/// metadata, not part of the decision, and is deliberately excluded.
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    /// Model set per query (parallel to `ScheduleInput::queries`;
    /// `ModelSet::EMPTY` = left unscheduled this round).
    pub assignments: Vec<ModelSet>,
    /// Execution order over query indices (EDF for all built-in schedulers).
    /// Unscheduled queries may appear and are skipped at dispatch.
    pub order: Vec<usize>,
    /// Abstract work units the scheduler consumed — converted into
    /// scheduling latency by the pipeline's cost model (Exp-4/Fig. 21).
    pub work: u64,
    /// Peak candidate-frontier width observed while planning (the widest
    /// pruned Pareto layer for the DP). Diagnostics only — surfaced in
    /// plan-explainability traces; `0` means the scheduler doesn't track it.
    pub frontier: u32,
}

impl PartialEq for SchedulePlan {
    fn eq(&self, other: &Self) -> bool {
        self.assignments == other.assignments
            && self.order == other.order
            && self.work == other.work
    }
}

impl Eq for SchedulePlan {}

impl SchedulePlan {
    /// A plan scheduling nothing.
    pub fn empty(n: usize) -> Self {
        Self { assignments: vec![ModelSet::EMPTY; n], order: Vec::new(), work: 0, frontier: 0 }
    }

    /// Number of queries that received at least one model.
    pub fn scheduled_count(&self) -> usize {
        self.assignments.iter().filter(|s| !s.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn two_query_input() -> ScheduleInput {
        ScheduleInput {
            now: at(0),
            availability: vec![at(0), at(5)],
            latencies: vec![ms(10), ms(20)],
            queries: vec![
                BufferedQuery {
                    id: 0,
                    arrival: at(0),
                    deadline: at(100),
                    utilities: vec![0.0, 0.5, 0.6, 1.0],
                    score: 0.1,
                },
                BufferedQuery {
                    id: 1,
                    arrival: at(1),
                    deadline: at(50),
                    utilities: vec![0.0, 0.5, 0.6, 1.0],
                    score: 0.9,
                },
            ],
        }
    }

    #[test]
    fn edf_order_sorts_by_deadline() {
        let input = two_query_input();
        assert_eq!(input.edf_order(), vec![1, 0]);
    }

    #[test]
    fn edf_order_into_reuses_buffer_and_matches_sort() {
        let mut input = two_query_input();
        let mut buf = vec![9usize; 64]; // stale content must be overwritten
        input.edf_order_into(&mut buf);
        assert_eq!(buf, vec![1, 0]);

        // Already-sorted buffers (the common case the sort-skip detects):
        // identity order, including deadline ties broken by arrival then id.
        input.queries.swap(0, 1);
        input.edf_order_into(&mut buf);
        assert_eq!(buf, vec![0, 1]);
        // A deadline tie falls back to (arrival, id): query 1 (arrival 0,
        // id 0) now precedes query 0 (arrival 1, id 1).
        input.queries[1].deadline = input.queries[0].deadline;
        input.edf_order_into(&mut buf);
        assert_eq!(buf, vec![1, 0]);
    }

    #[test]
    fn edf_order_matches_full_sort_on_shuffled_inputs() {
        // Pseudo-random deadlines/arrivals: the fast path must never fire
        // incorrectly — compare against an explicit sort.
        for seed in 0..50u64 {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let queries: Vec<BufferedQuery> = (0..12u64)
                .map(|id| BufferedQuery {
                    id,
                    arrival: at(next() % 40),
                    deadline: at(40 + next() % 5), // frequent ties
                    utilities: vec![0.0, 1.0],
                    score: 0.5,
                })
                .collect();
            let input = ScheduleInput {
                now: at(0),
                availability: vec![at(0)],
                latencies: vec![ms(10)],
                queries,
            };
            let mut expected: Vec<usize> = (0..input.queries.len()).collect();
            expected.sort_by_key(|&i| {
                (input.queries[i].deadline, input.queries[i].arrival, input.queries[i].id)
            });
            assert_eq!(input.edf_order(), expected, "seed {seed}");
        }
    }

    #[test]
    fn completions_respect_availability_and_serial_queues() {
        let input = two_query_input();
        let plan = SchedulePlan {
            assignments: vec![ModelSet::from_indices(&[0, 1]), ModelSet::singleton(0)],
            order: vec![1, 0],
            work: 0,
            frontier: 0,
        };
        let completions = input.completions(&plan);
        // Query 1 runs first on model 0: 0 + 10 = 10.
        assert_eq!(completions[1], Some(at(10)));
        // Query 0: model 0 free at 10 → 20; model 1 free at 5 → 25. Max 25.
        assert_eq!(completions[0], Some(at(25)));
    }

    #[test]
    fn feasibility_and_utility() {
        let input = two_query_input();
        let feasible = SchedulePlan {
            assignments: vec![ModelSet::singleton(0), ModelSet::singleton(0)],
            order: vec![1, 0],
            work: 0,
            frontier: 0,
        };
        assert!(input.plan_is_feasible(&feasible));
        assert!((input.plan_utility(&feasible) - 1.0).abs() < 1e-12);

        let too_late = SchedulePlan {
            assignments: vec![ModelSet::EMPTY, ModelSet::singleton(1)],
            order: vec![1],
            work: 0,
            frontier: 0,
        };
        // Model 1: avail 5 + 20 = 25 ≤ 50 — feasible.
        assert!(input.plan_is_feasible(&too_late));
    }

    #[test]
    fn empty_plan_is_feasible_and_worthless() {
        let input = two_query_input();
        let plan = SchedulePlan::empty(2);
        assert!(input.plan_is_feasible(&plan));
        assert_eq!(input.plan_utility(&plan), 0.0);
        assert_eq!(plan.scheduled_count(), 0);
    }
}
