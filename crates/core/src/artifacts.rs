//! Offline-trained artifacts shared by pipeline runs.
//!
//! Everything Schemble learns before serving — calibration temperatures, the
//! discrepancy scorer, the accuracy profile and the score-prediction network
//! — is fitted once on *historical* data (yesterday's queries) and reused
//! across the deadline sweeps of an experiment. [`SchembleArtifacts`]
//! packages that training step.

use crate::discrepancy::{DifficultyMetric, DiscrepancyScorer};
use crate::predictor::train_score_predictor;
use crate::profiling::AccuracyProfile;
use schemble_models::{Ensemble, SampleGenerator};
use schemble_nn::DiscrepancyPredictor;
use schemble_sim::rng::stream_rng;
use schemble_tensor::stats::mean;

/// The trained state of one Schemble deployment.
#[derive(Debug, Clone)]
pub struct SchembleArtifacts {
    /// The offline (oracle) difficulty scorer.
    pub scorer: DiscrepancyScorer,
    /// The per-bin subset reward table.
    pub profile: AccuracyProfile,
    /// The online score predictor.
    pub predictor: DiscrepancyPredictor,
    /// Mean historical score — the constant used by the `Schemble(t)`
    /// ablation.
    pub mean_score: f64,
    /// The metric the artifacts were built around.
    pub metric: DifficultyMetric,
}

impl SchembleArtifacts {
    /// Trains artifacts with explicit sizes.
    ///
    /// `history_ids` start at a high offset so serving workloads (ids from 0)
    /// never overlap the training data.
    pub fn build(
        ensemble: &Ensemble,
        generator: &SampleGenerator,
        history_n: usize,
        bins: usize,
        metric: DifficultyMetric,
        seed: u64,
    ) -> Self {
        const HISTORY_OFFSET: u64 = 1 << 40;
        let history = generator.batch(HISTORY_OFFSET, history_n);
        let scorer = DiscrepancyScorer::fit(ensemble, &history, metric);
        let scores = scorer.score_batch(ensemble, &history);
        let profile = AccuracyProfile::fit(ensemble, &history, &scores, bins);
        let mut rng = stream_rng(seed, "artifacts-predictor");
        let predictor = train_score_predictor(ensemble, &history, &scores, &mut rng);
        let mean_score = mean(&scores);
        Self { scorer, profile, predictor, mean_score, metric }
    }

    /// Paper-default sizes (2 000 historical samples, 10 bins, discrepancy
    /// metric).
    pub fn build_default(ensemble: &Ensemble, generator: &SampleGenerator, seed: u64) -> Self {
        Self::build(
            ensemble,
            generator,
            2000,
            AccuracyProfile::DEFAULT_BINS,
            DifficultyMetric::Discrepancy,
            seed,
        )
    }

    /// Small/fast variant for tests.
    pub fn build_small(ensemble: &Ensemble, generator: &SampleGenerator, seed: u64) -> Self {
        Self::build(ensemble, generator, 600, 8, DifficultyMetric::Discrepancy, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_data::TaskKind;

    #[test]
    fn artifacts_fit_together() {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let art = SchembleArtifacts::build_small(&ens, &gen, 9);
        assert_eq!(art.profile.m(), ens.m());
        assert!((0.0..=1.0).contains(&art.mean_score));
        // Predictor and scorer must be usable on fresh samples.
        let s = gen.sample(123_456);
        let predicted = art.predictor.predict_score(&s.features);
        let truth = art.scorer.score(&ens, &s);
        assert!((0.0..=1.0).contains(&predicted));
        assert!((0.0..=1.0).contains(&truth));
    }

    #[test]
    fn ea_variant_uses_agreement_metric() {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let art =
            SchembleArtifacts::build(&ens, &gen, 400, 8, DifficultyMetric::EnsembleAgreement, 9);
        assert_eq!(art.metric, DifficultyMetric::EnsembleAgreement);
    }
}
