//! Discrete-event serving pipelines.
//!
//! Two pipeline families reproduce Fig. 2/3:
//!
//! * [`immediate`] — the conventional pipelines: a selection policy chooses a
//!   model subset *at arrival* (Original = always everything; Static = fixed
//!   subset over a replica deployment; DES/Gating = feature-based selectors
//!   plugged in through [`SelectionPolicy`]), tasks are enqueued to
//!   per-instance FIFO queues immediately, with optional admission rejection
//!   when the estimated completion exceeds the deadline.
//! * [`schemble`] — the paper's pipeline (Fig. 3): arrivals land in a query
//!   buffer, the discrepancy-score predictor tags them, the task scheduler
//!   re-plans on every arrival/completion, and tasks are dispatched only when
//!   models idle. Scheduling cost is charged to the simulated clock, so a
//!   too-fine quantization step slows the *served* system (Fig. 12/21).
//!
//! [`static_select`] implements the greedy search for the best static
//! deployment (subset + replicas); [`eval`] scores results against the full
//! ensemble's output.

pub mod eval;
pub mod immediate;
pub mod schemble;
pub mod static_select;

pub use immediate::{
    run_immediate, run_immediate_traced, Deployment, FixedSubsetPolicy, FullEnsemblePolicy,
    SelectionPolicy,
};
pub use schemble::{run_schemble, run_schemble_traced, SchembleConfig};
pub use static_select::best_static_deployment;

/// Whether queries may be refused service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Queries whose estimated completion exceeds their deadline are
    /// rejected/expired (the deadline-miss-rate experiments, Exp-1).
    Reject,
    /// Every query must eventually be processed (the latency experiments,
    /// Exp-2 / Table II).
    ForceAll,
}

/// How a query's result is assembled from its executed models' outputs.
#[derive(Debug, Clone)]
pub enum ResultAssembler {
    /// Aggregate the present outputs directly (voting excludes missing
    /// outputs; weighted averaging renormalises).
    Direct,
    /// Fill missing outputs with the KNN imputer first (required for
    /// stacking aggregators).
    KnnFill(crate::filling::KnnFiller),
}

impl ResultAssembler {
    /// Produces the final output for a query that executed `set`.
    pub fn assemble(
        &self,
        ensemble: &schemble_models::Ensemble,
        outputs: &[(usize, schemble_models::Output)],
        set: schemble_models::ModelSet,
    ) -> schemble_models::Output {
        match self {
            ResultAssembler::Direct => {
                let present: Vec<(usize, &schemble_models::Output)> =
                    outputs.iter().map(|(k, o)| (*k, o)).collect();
                ensemble.aggregate(&present)
            }
            ResultAssembler::KnnFill(filler) => {
                let present: Vec<(usize, &schemble_models::Output)> =
                    outputs.iter().map(|(k, o)| (*k, o)).collect();
                let filled = filler.fill_outputs(&present, set, ensemble.spec.is_categorical());
                let refs: Vec<(usize, &schemble_models::Output)> =
                    filled.iter().enumerate().collect();
                ensemble.aggregate(&refs)
            }
        }
    }
}
