//! Greedy search for the best static deployment (Fig. 2b).
//!
//! Static selection drops unchosen models and spends the freed memory on
//! replicas of chosen ones. "Thanks to the small ensemble size of the deep
//! ensemble, we are able to find an optimal deployment plan by greedy
//! search" — here, every non-empty subset is tried with a bottleneck-first
//! replica fill, evaluated by a pilot simulation on a workload prefix, and
//! the accuracy-maximising deployment wins.

use super::immediate::{run_immediate, Deployment, FixedSubsetPolicy};
use super::{AdmissionMode, ResultAssembler};
use schemble_data::Workload;
use schemble_models::{Ensemble, ModelSet};

/// Builds a deployment for subset `set`: one instance per member, then
/// replicas of the current bottleneck (highest latency per instance) until
/// all `m` memory slots are used.
pub fn deployment_for(ensemble: &Ensemble, set: ModelSet) -> Deployment {
    assert!(!set.is_empty(), "static deployment needs at least one model");
    let m = ensemble.m();
    let mut hosts: Vec<usize> = set.iter().collect();
    while hosts.len() < m {
        // Bottleneck model: max (latency / replica count).
        let bottleneck = set
            .iter()
            .max_by(|&a, &b| {
                let load = |k: usize| {
                    let replicas = hosts.iter().filter(|&&h| h == k).count() as f64;
                    ensemble.latency(k).planned().as_micros() as f64 / replicas
                };
                load(a).partial_cmp(&load(b)).expect("finite load")
            })
            .expect("non-empty set");
        hosts.push(bottleneck);
    }
    hosts.sort_unstable();
    Deployment { hosts }
}

/// Greedy static selection: evaluates every subset's deployment on a pilot
/// prefix of the workload (at most `pilot_n` queries) and returns the
/// accuracy-best `(subset, deployment)`.
pub fn best_static_deployment(
    ensemble: &Ensemble,
    workload: &Workload,
    pilot_n: usize,
    seed: u64,
) -> (ModelSet, Deployment) {
    let pilot = Workload {
        queries: workload.queries.iter().take(pilot_n).cloned().collect(),
        duration: workload.duration,
    };
    let mut best: Option<(f64, ModelSet, Deployment)> = None;
    for set in ModelSet::all_nonempty(ensemble.m()) {
        let deployment = deployment_for(ensemble, set);
        let mut policy = FixedSubsetPolicy { set };
        let summary = run_immediate(
            ensemble,
            &deployment,
            &mut policy,
            &ResultAssembler::Direct,
            &pilot,
            AdmissionMode::Reject,
            seed,
        );
        let acc = summary.accuracy();
        let better = match &best {
            None => true,
            Some((b, _, _)) => acc > *b,
        };
        if better {
            best = Some((acc, set, deployment));
        }
    }
    let (_, set, deployment) = best.expect("at least one subset evaluated");
    (set, deployment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_data::{DeadlinePolicy, PoissonTrace, TaskKind, Workload};

    #[test]
    fn replica_fill_targets_the_bottleneck() {
        let ens = TaskKind::TextMatching.ensemble(1);
        // Subset {0}: all three slots host model 0.
        let d = deployment_for(&ens, ModelSet::singleton(0));
        assert_eq!(d.hosts, vec![0, 0, 0]);
        // Subset {0, 2}: model 2 (48 ms) is the bottleneck vs model 0 (18 ms),
        // so the free slot replicates model 2.
        let d = deployment_for(&ens, ModelSet::from_indices(&[0, 2]));
        assert_eq!(d.hosts, vec![0, 2, 2]);
    }

    #[test]
    fn greedy_search_picks_a_capable_subset_under_load() {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let w = Workload::generate(
            &gen,
            &PoissonTrace { rate_per_sec: 55.0, n: 400 },
            &DeadlinePolicy::constant_millis(120.0),
            7,
        );
        let (set, deployment) = best_static_deployment(&ens, &w, 300, 3);
        assert!(!set.is_empty());
        assert_eq!(deployment.len(), ens.m());
        // Under this load the full-ensemble subset cannot win: it has no
        // replicas and misses most deadlines.
        assert!(set != ModelSet::full(3), "full set should lose the pilot under load");
    }
}
