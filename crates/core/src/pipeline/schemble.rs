//! The Schemble serving pipeline (Fig. 3).
//!
//! Arrivals enter a **query buffer**. The discrepancy-score predictor tags
//! each query (its prediction latency delays the query's earliest dispatch,
//! mirroring the GPU-side predictor of §VIII). On every arrival and task
//! completion the **task scheduler** re-plans the buffer against current
//! model availability; plans take effect only after the scheduler's own
//! (simulated) execution time — the mechanism by which a too-fine `δ` hurts
//! end-to-end performance (Exp-4, Fig. 21). Tasks are dispatched when models
//! idle; once any task of a query starts, its model set is frozen
//! (non-preemptive execution).

use super::eval::evaluate;
use super::{AdmissionMode, ResultAssembler};
use crate::predictor::OnlineScorer;
use crate::profiling::AccuracyProfile;
use crate::scheduler::{BufferedQuery, ScheduleInput, Scheduler};
use schemble_data::Workload;
use schemble_metrics::{QueryOutcome, QueryRecord, RunSummary};
use schemble_models::{Ensemble, ModelSet, Output};
use schemble_sim::rng::stream_rng;
use schemble_sim::{EventQueue, ServerBank, SimDuration, SimTime, TaskId};
use std::collections::HashMap;

/// Configuration of a Schemble pipeline run.
pub struct SchembleConfig {
    /// The buffer scheduler (DP or a greedy ablation).
    pub scheduler: Box<dyn Scheduler>,
    /// Online difficulty scorer.
    pub scorer: OnlineScorer,
    /// The profiled reward function.
    pub profile: AccuracyProfile,
    /// Result assembly (direct aggregation or KNN-filled stacking).
    pub assembler: ResultAssembler,
    /// Admission mode.
    pub admission: AdmissionMode,
    /// Latency of one discrepancy-score prediction (delays dispatch
    /// eligibility of the query; ~6.5% of ensemble runtime in Fig. 13).
    pub predictor_latency: SimDuration,
    /// Simulated cost per scheduler work unit (nanoseconds).
    pub sched_ns_per_unit: f64,
    /// Fixed per-invocation scheduler overhead.
    pub sched_base_overhead: SimDuration,
    /// §VIII's final optimisation: when the buffer is empty and a model
    /// idles, an arriving query bypasses the predictor and scheduler
    /// entirely and runs the fastest idle model immediately, eliminating the
    /// prediction/scheduling wait on an unloaded system. The skipped query
    /// never consults the profile, so at very light load this trades a
    /// little accuracy for latency (the `exp_ablation` driver measures it).
    pub fast_path: bool,
}

impl SchembleConfig {
    /// Paper-default knobs for a given scheduler/scorer/profile.
    pub fn new(
        scheduler: Box<dyn Scheduler>,
        scorer: OnlineScorer,
        profile: AccuracyProfile,
    ) -> Self {
        Self {
            scheduler,
            scorer,
            profile,
            assembler: ResultAssembler::Direct,
            admission: AdmissionMode::Reject,
            predictor_latency: SimDuration::from_millis(3),
            sched_ns_per_unit: 25.0,
            sched_base_overhead: SimDuration::from_micros(50),
            fast_path: false,
        }
    }
}

#[derive(Debug)]
struct QState {
    deadline: SimTime,
    arrival: SimTime,
    /// Earliest dispatch (arrival + predictor latency).
    ready_at: SimTime,
    score: f64,
    utilities: Vec<f64>,
    set: ModelSet,
    started: ModelSet,
    outputs: Vec<(usize, Output)>,
    closed: bool,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(usize),
    TaskDone { model: usize, query: u64 },
    Wake,
}

/// Runs the Schemble pipeline over a workload.
pub fn run_schemble(
    ensemble: &Ensemble,
    config: &SchembleConfig,
    workload: &Workload,
    seed: u64,
) -> RunSummary {
    let m = ensemble.m();
    let mut events: EventQueue<Event> = EventQueue::new();
    for (i, q) in workload.queries.iter().enumerate() {
        events.push(q.arrival, Event::Arrival(i));
    }
    let mut servers = ServerBank::new(m);
    let mut lat_rng = stream_rng(seed, "schemble-latency");
    let mut open: HashMap<u64, QState> = HashMap::new();
    let mut plan_ready_at = SimTime::ZERO;
    let mut records: Vec<QueryRecord> = workload
        .queries
        .iter()
        .map(|q| QueryRecord {
            id: q.id,
            arrival: q.arrival,
            deadline: q.deadline,
            completion: None,
            outcome: QueryOutcome::Missed,
            models_used: 0,
        })
        .collect();



    while let Some((now, event)) = events.pop() {
        match event {
            Event::Arrival(i) => {
                let q = &workload.queries[i];
                // Fast path (§VIII): empty buffer + an idle model ⇒ skip
                // prediction and scheduling, run the fastest idle model now.
                if config.fast_path && open.is_empty() && servers.any_idle() {
                    let k = servers
                        .idle_indices()
                        .into_iter()
                        .min_by_key(|&k| ensemble.latency(k).planned())
                        .expect("an idle server exists");
                    let dur = ensemble.latency(k).sample(&mut lat_rng);
                    let run = servers.get_mut(k).start_immediately(TaskId(q.id), now, dur);
                    events.push(run.completes_at, Event::TaskDone { model: k, query: q.id });
                    open.insert(
                        q.id,
                        QState {
                            deadline: q.deadline,
                            arrival: q.arrival,
                            ready_at: q.arrival,
                            score: 0.0,
                            utilities: config.profile.utility_vector(0.0),
                            set: ModelSet::singleton(k),
                            started: ModelSet::singleton(k),
                            outputs: Vec::new(),
                            closed: false,
                        },
                    );
                    continue;
                }
                let score =
                    config.scorer.score(&q.sample, ensemble).clamp(0.0, 1.0);
                let utilities = config.profile.utility_vector(score);
                open.insert(
                    q.id,
                    QState {
                        deadline: q.deadline,
                        arrival: q.arrival,
                        ready_at: q.arrival + config.predictor_latency,
                        score,
                        utilities,
                        set: ModelSet::EMPTY,
                        started: ModelSet::EMPTY,
                        outputs: Vec::new(),
                        closed: false,
                    },
                );
                // The query only becomes dispatchable once its score
                // prediction lands; make sure something fires then.
                let ready_at = q.arrival + config.predictor_latency;
                events.push(ready_at.max(now), Event::Wake);
                expire(ensemble, config, workload, &mut open, &mut records, now);
                plan_ready_at = replan(
                    ensemble,
                    config,
                    &mut open,
                    &servers,
                    now,
                    plan_ready_at,
                );
                schedule_dispatch(&mut events, now, plan_ready_at);
            }
            Event::TaskDone { model, query } => {
                servers.get_mut(model).complete(TaskId(query), now);
                {
                    let q = &workload.queries[query as usize];
                    let state =
                        open.get_mut(&query).expect("completion for unknown query");
                    state.outputs.push((
                        model,
                        ensemble.models[model].infer(&q.sample, &ensemble.spec),
                    ));
                }
                finish_if_complete(ensemble, config, workload, &mut open, &mut records, query, now);
                expire(ensemble, config, workload, &mut open, &mut records, now);
                plan_ready_at = replan(
                    ensemble,
                    config,
                    &mut open,
                    &servers,
                    now,
                    plan_ready_at,
                );
                schedule_dispatch(&mut events, now, plan_ready_at);
            }
            Event::Wake => {
                expire(ensemble, config, workload, &mut open, &mut records, now);
            }
        }
        // Dispatch whenever the latest plan is effective.
        if now >= plan_ready_at {
            dispatch(
                ensemble,
                &mut servers,
                &mut open,
                &mut events,
                &mut lat_rng,
                now,
            );
        }
    }

    // Anything still open at drain never completed (possible only in Reject
    // mode where unscheduled queries expired silently before last event).
    for (id, state) in &open {
        debug_assert!(
            state.started.is_empty(),
            "query {id} drained with running tasks"
        );
    }
    let usage = (0..m)
        .map(|k| schemble_metrics::ModelUsage {
            name: ensemble.models[k].name.clone(),
            busy_secs: servers.get(k).busy_time().as_secs_f64(),
            tasks: servers.get(k).completed_tasks(),
            instances: 1,
        })
        .collect();
    RunSummary::new(records).with_usage(usage)
}

/// Re-plans the unstarted buffer; returns when the new plan takes effect.
fn replan(
    ensemble: &Ensemble,
    config: &SchembleConfig,
    open: &mut HashMap<u64, QState>,
    servers: &ServerBank,
    now: SimTime,
    prev_ready: SimTime,
) -> SimTime {
    let mut ids: Vec<u64> = open
        .iter()
        .filter(|(_, s)| s.started.is_empty() && !s.closed)
        .map(|(&id, _)| id)
        .collect();
    if ids.is_empty() {
        return prev_ready.max(now);
    }
    ids.sort_unstable();
    // Availability must account for *committed* work: tasks of frozen
    // (already-started) queries that have not begun executing yet will
    // occupy their models before anything planned now — without this, the
    // planner overcommits and every plan completes late.
    let mut availability = servers.availability(now);
    for state in open.values() {
        if state.closed || state.started.is_empty() {
            continue;
        }
        for k in state.set.iter() {
            if !state.started.contains(k) {
                availability[k] += ensemble.latency(k).planned();
            }
        }
    }
    let queries: Vec<BufferedQuery> = ids
        .iter()
        .map(|id| {
            let s = &open[id];
            BufferedQuery {
                id: *id,
                arrival: s.arrival,
                deadline: s.deadline,
                utilities: s.utilities.clone(),
                score: s.score,
            }
        })
        .collect();
    let input = ScheduleInput {
        now,
        availability,
        latencies: ensemble.planned_latencies(),
        queries,
    };
    let plan = config.scheduler.plan(&input);
    for (pos, id) in ids.iter().enumerate() {
        open.get_mut(id).expect("present").set = plan.assignments[pos];
    }
    // Forced mode: queries the plan abandoned but that must run get the
    // least-loaded single model.
    if config.admission == AdmissionMode::ForceAll {
        let availability = servers.availability(now);
        for id in &ids {
            let s = open.get_mut(id).expect("present");
            if s.set.is_empty() {
                let best = (0..ensemble.m())
                    .min_by_key(|&k| availability[k] + ensemble.latency(k).planned())
                    .expect("non-empty ensemble");
                s.set = ModelSet::singleton(best);
            }
        }
    }
    let cost = SimDuration::from_micros(
        (config.sched_ns_per_unit * plan.work as f64 / 1000.0).round() as u64,
    ) + config.sched_base_overhead;
    now + cost
}

/// Starts tasks on idle servers per the current plan, in EDF order.
fn dispatch(
    ensemble: &Ensemble,
    servers: &mut ServerBank,
    open: &mut HashMap<u64, QState>,
    events: &mut EventQueue<Event>,
    lat_rng: &mut impl rand::Rng,
    now: SimTime,
) {
    // EDF order over open queries.
    let mut ids: Vec<u64> = open.keys().copied().collect();
    ids.sort_by_key(|id| (open[id].deadline, *id));
    for k in servers.idle_indices() {
        for id in &ids {
            let state = open.get_mut(id).expect("present");
            if state.closed
                || !state.set.contains(k)
                || state.started.contains(k)
                || state.ready_at > now
            {
                continue;
            }
            let dur = ensemble.latency(k).sample(lat_rng);
            let run = servers.get_mut(k).start_immediately(TaskId(*id), now, dur);
            events.push(run.completes_at, Event::TaskDone { model: k, query: *id });
            state.started = state.started.with(k);
            break;
        }
    }
}

/// Completes a query once outputs for its whole (possibly shrunk) set have
/// arrived: assembles the result, evaluates it and records the completion.
fn finish_if_complete(
    ensemble: &Ensemble,
    config: &SchembleConfig,
    workload: &Workload,
    open: &mut HashMap<u64, QState>,
    records: &mut [QueryRecord],
    query: u64,
    now: SimTime,
) {
    let Some(state) = open.get_mut(&query) else { return };
    if state.set.is_empty() || state.outputs.len() != state.set.len() {
        return;
    }
    let q = &workload.queries[query as usize];
    let mut outputs = std::mem::take(&mut state.outputs);
    outputs.sort_by_key(|(k, _)| *k);
    let result = config.assembler.assemble(ensemble, &outputs, state.set);
    let (correct, score) = evaluate(ensemble, &q.sample, &result);
    records[query as usize].completion = Some(now);
    records[query as usize].outcome = QueryOutcome::Completed { correct, score };
    records[query as usize].models_used = state.set.len();
    state.closed = true;
    open.remove(&query);
}

/// Deadline housekeeping (Reject mode only; ForceAll keeps everything):
/// unstarted expired queries are dropped, and already-started expired
/// queries stop scheduling *further* tasks (their set shrinks to what has
/// started — a late result is a miss either way, so the remaining capacity
/// goes to queries that can still make it).
fn expire(
    ensemble: &Ensemble,
    config: &SchembleConfig,
    workload: &Workload,
    open: &mut HashMap<u64, QState>,
    records: &mut [QueryRecord],
    now: SimTime,
) {
    if config.admission == AdmissionMode::ForceAll {
        return;
    }
    let expired: Vec<u64> = open
        .iter()
        .filter(|(_, s)| s.started.is_empty() && s.deadline < now)
        .map(|(&id, _)| id)
        .collect();
    for id in expired {
        open.remove(&id);
        // Record already defaults to Missed.
        records[id as usize].models_used = 0;
    }
    let late_started: Vec<u64> = open
        .iter()
        .filter(|(_, s)| !s.started.is_empty() && s.deadline < now && s.set != s.started)
        .map(|(&id, _)| id)
        .collect();
    for id in late_started {
        let state = open.get_mut(&id).expect("present");
        state.set = state.started;
        finish_if_complete(ensemble, config, workload, open, records, id, now);
    }
}

/// Ensures a wake-up fires when a pending plan becomes effective.
fn schedule_dispatch(events: &mut EventQueue<Event>, now: SimTime, plan_ready_at: SimTime) {
    if plan_ready_at > now {
        events.push(plan_ready_at, Event::Wake);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::SchembleArtifacts;
    use crate::pipeline::immediate::{run_immediate, Deployment, FullEnsemblePolicy};
    use crate::scheduler::DpScheduler;
    use schemble_data::{DeadlinePolicy, PoissonTrace, TaskKind, Workload};

    fn setup(rate: f64, n: usize, deadline_ms: f64) -> (Ensemble, Workload, SchembleConfig) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let art = SchembleArtifacts::build_small(&ens, &task.default_generator(1), 1);
        let gen = task.default_generator(1);
        let w = Workload::generate(
            &gen,
            &PoissonTrace { rate_per_sec: rate, n },
            &DeadlinePolicy::constant_millis(deadline_ms),
            7,
        );
        let config = SchembleConfig::new(
            Box::new(DpScheduler::default()),
            OnlineScorer::Predictor(art.predictor.clone()),
            art.profile.clone(),
        );
        (ens, w, config)
    }

    #[test]
    fn light_load_uses_full_sets_and_hits_deadlines() {
        let (ens, w, config) = setup(2.0, 150, 200.0);
        let summary = run_schemble(&ens, &config, &w, 3);
        assert!(summary.deadline_miss_rate() < 0.05, "dmr {}", summary.deadline_miss_rate());
        assert!(summary.accuracy() > 0.9, "acc {}", summary.accuracy());
        assert!(
            summary.mean_models_used() > 2.0,
            "light traffic should run (nearly) the whole ensemble, got {}",
            summary.mean_models_used()
        );
    }

    #[test]
    fn heavy_load_schemble_beats_original() {
        let (ens, w, config) = setup(55.0, 800, 120.0);
        let schemble = run_schemble(&ens, &config, &w, 3);
        let original = run_immediate(
            &ens,
            &Deployment::identity(3),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::Reject,
            3,
        );
        assert!(
            schemble.deadline_miss_rate() < original.deadline_miss_rate() * 0.5,
            "schemble dmr {} vs original {}",
            schemble.deadline_miss_rate(),
            original.deadline_miss_rate()
        );
        assert!(
            schemble.accuracy() > original.accuracy() + 0.1,
            "schemble acc {} vs original {}",
            schemble.accuracy(),
            original.accuracy()
        );
        // Under load, Schemble sheds models per query.
        assert!(schemble.mean_models_used() < 2.5);
    }

    #[test]
    fn forced_mode_serves_every_query() {
        let (ens, w, mut config) = setup(40.0, 400, 100.0);
        config.admission = AdmissionMode::ForceAll;
        let summary = run_schemble(&ens, &config, &w, 3);
        assert_eq!(summary.completion_rate(), 1.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let (ens, w, config) = setup(25.0, 200, 120.0);
        let a = run_schemble(&ens, &config, &w, 5);
        let b = run_schemble(&ens, &config, &w, 5);
        assert_eq!(a.records(), b.records());
    }
}

#[cfg(test)]
mod fast_path_tests {
    use super::*;
    use crate::artifacts::SchembleArtifacts;
    use crate::scheduler::DpScheduler;
    use schemble_data::{DeadlinePolicy, PoissonTrace, TaskKind, Workload};

    fn config_with_fast_path(fast: bool) -> (Ensemble, Workload, SchembleConfig) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let art = SchembleArtifacts::build_small(&ens, &gen, 1);
        let w = Workload::generate(
            &gen,
            &PoissonTrace { rate_per_sec: 3.0, n: 150 },
            &DeadlinePolicy::constant_millis(150.0),
            7,
        );
        let mut config = SchembleConfig::new(
            Box::new(DpScheduler::default()),
            OnlineScorer::Predictor(art.predictor.clone()),
            art.profile.clone(),
        );
        config.fast_path = fast;
        (ens, w, config)
    }

    #[test]
    fn fast_path_cuts_light_load_latency() {
        let (ens, w, slow) = config_with_fast_path(false);
        let (_, _, fast) = config_with_fast_path(true);
        let base = run_schemble(&ens, &slow, &w, 3);
        let quick = run_schemble(&ens, &fast, &w, 3);
        // At 3 qps almost every arrival hits the fast path: latency drops by
        // at least the 3 ms predictor wait.
        assert!(
            quick.latency_stats().mean + 0.002 < base.latency_stats().mean,
            "fast {:.4}s vs base {:.4}s",
            quick.latency_stats().mean,
            base.latency_stats().mean
        );
        assert!(quick.deadline_miss_rate() <= base.deadline_miss_rate() + 0.02);
        // The price: single-model answers on an unloaded system.
        assert!(quick.mean_models_used() < base.mean_models_used());
    }

    #[test]
    fn fast_path_queries_are_recorded_normally() {
        let (ens, w, fast) = config_with_fast_path(true);
        let summary = run_schemble(&ens, &fast, &w, 3);
        assert_eq!(summary.len(), w.len());
        assert_eq!(summary.completion_rate() + summary.deadline_miss_rate(), 1.0);
    }
}
