//! The Schemble serving pipeline (Fig. 3).
//!
//! Arrivals enter a **query buffer**. The discrepancy-score predictor tags
//! each query (its prediction latency delays the query's earliest dispatch,
//! mirroring the GPU-side predictor of §VIII). On every arrival and task
//! completion the **task scheduler** re-plans the buffer against current
//! model availability; plans take effect only after the scheduler's own
//! (simulated) execution time — the mechanism by which a too-fine `δ` hurts
//! end-to-end performance (Exp-4, Fig. 21). Tasks are dispatched when models
//! idle; once any task of a query starts, its model set is frozen
//! (non-preemptive execution).

use super::{AdmissionMode, ResultAssembler};
use crate::backend::{ExecutionBackend, SimBackend};
use crate::engine::{AnytimePolicy, FailurePolicy, PipelineEngine, SchembleEngine};
use crate::predictor::OnlineScorer;
use crate::profiling::AccuracyProfile;
use crate::scheduler::Scheduler;
use schemble_data::Workload;
use schemble_metrics::RunSummary;
use schemble_models::Ensemble;
use schemble_sim::{BatchConfig, FaultPlan, SimDuration};
use schemble_trace::TraceSink;
use std::sync::Arc;

/// Configuration of a Schemble pipeline run.
pub struct SchembleConfig {
    /// The buffer scheduler (DP or a greedy ablation).
    pub scheduler: Box<dyn Scheduler>,
    /// Online difficulty scorer.
    pub scorer: OnlineScorer,
    /// The profiled reward function.
    pub profile: AccuracyProfile,
    /// Result assembly (direct aggregation or KNN-filled stacking).
    pub assembler: ResultAssembler,
    /// Admission mode.
    pub admission: AdmissionMode,
    /// Latency of one discrepancy-score prediction (delays dispatch
    /// eligibility of the query; ~6.5% of ensemble runtime in Fig. 13).
    pub predictor_latency: SimDuration,
    /// Simulated cost per scheduler work unit (nanoseconds).
    pub sched_ns_per_unit: f64,
    /// Fixed per-invocation scheduler overhead.
    pub sched_base_overhead: SimDuration,
    /// §VIII's final optimisation: when the buffer is empty and a model
    /// idles, an arriving query bypasses the predictor and scheduler
    /// entirely and runs the fastest idle model immediately, eliminating the
    /// prediction/scheduling wait on an unloaded system. The skipped query
    /// never consults the profile, so at very light load this trades a
    /// little accuracy for latency (the `exp_ablation` driver measures it).
    pub fast_path: bool,
    /// Retry/degradation policy for fault-tolerant runs. `None` (the
    /// default) keeps every decision identical to a fault-unaware build;
    /// see [`FailurePolicy`] for what `Some` opts into.
    pub failure: Option<FailurePolicy>,
    /// Anytime early-exit policy. `None` (the default) — and equally any
    /// policy whose threshold disables it — keeps every decision
    /// byte-identical to an engine without the feature; see
    /// [`AnytimePolicy`] for the quit rule `Some` opts into.
    pub anytime: Option<AnytimePolicy>,
    /// How many queries the engine scores per predictor forward pass.
    /// Scoring is pure and per-query deterministic, so prefetching scores
    /// for the next `score_batch` arrivals in one batched matmul changes no
    /// decisions (pinned by a test) — it only amortises the per-forward
    /// overhead. `1` recovers the strictly per-query path; values `< 1` are
    /// treated as `1`.
    pub score_batch: usize,
    /// Cross-query batched execution. `None` (the default) — and equally a
    /// config with `batch_max <= 1` — keeps every decision byte-identical
    /// to an unbatched engine; see [`BatchConfig`] for the coalescing rule
    /// `Some` opts into.
    pub batching: Option<BatchConfig>,
}

impl SchembleConfig {
    /// Paper-default knobs for a given scheduler/scorer/profile.
    pub fn new(
        scheduler: Box<dyn Scheduler>,
        scorer: OnlineScorer,
        profile: AccuracyProfile,
    ) -> Self {
        Self {
            scheduler,
            scorer,
            profile,
            assembler: ResultAssembler::Direct,
            admission: AdmissionMode::Reject,
            predictor_latency: SimDuration::from_millis(3),
            sched_ns_per_unit: 25.0,
            sched_base_overhead: SimDuration::from_micros(50),
            fast_path: false,
            failure: None,
            anytime: None,
            score_batch: 32,
            batching: None,
        }
    }
}

/// Runs the Schemble pipeline over a workload in the discrete-event
/// simulator.
///
/// This is a thin driver: all decision logic lives in
/// [`SchembleEngine`], executed here over a
/// [`SimBackend`]. The `schemble-serve` runtime
/// drives the identical engine over worker threads.
pub fn run_schemble(
    ensemble: &Ensemble,
    config: &SchembleConfig,
    workload: &Workload,
    seed: u64,
) -> RunSummary {
    run_schemble_traced(ensemble, config, workload, seed, TraceSink::disabled())
}

/// [`run_schemble`] with lifecycle events emitted into `trace`.
///
/// The sink observes, never steers: a traced run makes exactly the
/// decisions of an untraced one (`tests/trace_export.rs` pins this).
pub fn run_schemble_traced(
    ensemble: &Ensemble,
    config: &SchembleConfig,
    workload: &Workload,
    seed: u64,
    trace: Arc<TraceSink>,
) -> RunSummary {
    run_schemble_faulted(ensemble, config, workload, seed, trace, None)
}

/// [`run_schemble_traced`] with a seeded [`FaultPlan`] injected into the
/// simulated backend.
///
/// The `schemble-serve` virtual-clock runtime builds its backend the same
/// way (faults installed before arrivals), which keeps a faulted DES run and
/// a faulted serve run byte-identical — the property `tests/fault_properties`
/// pins. `None` (or a no-op plan) leaves the backend untouched.
pub fn run_schemble_faulted(
    ensemble: &Ensemble,
    config: &SchembleConfig,
    workload: &Workload,
    seed: u64,
    trace: Arc<TraceSink>,
    faults: Option<&FaultPlan>,
) -> RunSummary {
    let latencies = (0..ensemble.m()).map(|k| ensemble.latency(k)).collect();
    let mut backend =
        SimBackend::new(latencies, seed, "schemble-latency").with_trace(trace.clone());
    if let Some(plan) = faults {
        backend = backend.with_faults(plan.clone(), seed);
    }
    if let Some(batching) = config.batching {
        backend = backend.with_batching(batching);
    }
    for (i, q) in workload.queries.iter().enumerate() {
        backend.push_arrival(q.arrival, i);
    }
    let mut engine = SchembleEngine::new(ensemble, config, workload).with_trace(trace);
    let mut end = schemble_sim::SimTime::ZERO;
    while let Some((now, event)) = backend.pop_event() {
        engine.handle(event, now, &mut backend);
        end = now;
    }
    engine.drain(end);
    let usage = backend.usage();
    engine.into_summary(usage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::SchembleArtifacts;
    use crate::pipeline::immediate::{run_immediate, Deployment, FullEnsemblePolicy};
    use crate::scheduler::DpScheduler;
    use schemble_data::{DeadlinePolicy, PoissonTrace, TaskKind, Workload};

    fn setup(rate: f64, n: usize, deadline_ms: f64) -> (Ensemble, Workload, SchembleConfig) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let art = SchembleArtifacts::build_small(&ens, &task.default_generator(1), 1);
        let gen = task.default_generator(1);
        let w = Workload::generate(
            &gen,
            &PoissonTrace { rate_per_sec: rate, n },
            &DeadlinePolicy::constant_millis(deadline_ms),
            7,
        );
        let config = SchembleConfig::new(
            Box::new(DpScheduler::default()),
            OnlineScorer::Predictor(art.predictor.clone()),
            art.profile.clone(),
        );
        (ens, w, config)
    }

    #[test]
    fn light_load_uses_full_sets_and_hits_deadlines() {
        let (ens, w, config) = setup(2.0, 150, 200.0);
        let summary = run_schemble(&ens, &config, &w, 3);
        assert!(summary.deadline_miss_rate() < 0.05, "dmr {}", summary.deadline_miss_rate());
        assert!(summary.accuracy() > 0.9, "acc {}", summary.accuracy());
        assert!(
            summary.mean_models_used() > 2.0,
            "light traffic should run (nearly) the whole ensemble, got {}",
            summary.mean_models_used()
        );
    }

    #[test]
    fn heavy_load_schemble_beats_original() {
        let (ens, w, config) = setup(55.0, 800, 120.0);
        let schemble = run_schemble(&ens, &config, &w, 3);
        let original = run_immediate(
            &ens,
            &Deployment::identity(3),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::Reject,
            3,
        );
        assert!(
            schemble.deadline_miss_rate() < original.deadline_miss_rate() * 0.5,
            "schemble dmr {} vs original {}",
            schemble.deadline_miss_rate(),
            original.deadline_miss_rate()
        );
        assert!(
            schemble.accuracy() > original.accuracy() + 0.1,
            "schemble acc {} vs original {}",
            schemble.accuracy(),
            original.accuracy()
        );
        // Under load, Schemble sheds models per query.
        assert!(schemble.mean_models_used() < 2.5);
    }

    #[test]
    fn forced_mode_serves_every_query() {
        let (ens, w, mut config) = setup(40.0, 400, 100.0);
        config.admission = AdmissionMode::ForceAll;
        let summary = run_schemble(&ens, &config, &w, 3);
        assert_eq!(summary.completion_rate(), 1.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let (ens, w, config) = setup(25.0, 200, 120.0);
        let a = run_schemble(&ens, &config, &w, 5);
        let b = run_schemble(&ens, &config, &w, 5);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn score_batch_size_does_not_change_decisions() {
        // The batched score prefetch must be invisible: scoring is pure and
        // per-query, so any window size yields the same per-query scores and
        // therefore the same schedule, bit for bit.
        let (ens, w, mut config) = setup(25.0, 200, 120.0);
        config.score_batch = 1;
        let per_query = run_schemble(&ens, &config, &w, 5);
        for batch in [0, 7, 32, 1000] {
            config.score_batch = batch;
            let batched = run_schemble(&ens, &config, &w, 5);
            assert_eq!(per_query.records(), batched.records(), "score_batch {batch} diverged");
        }
    }
}

#[cfg(test)]
mod anytime_tests {
    use super::*;
    use crate::artifacts::SchembleArtifacts;
    use crate::scheduler::DpScheduler;
    use schemble_data::{DeadlinePolicy, PoissonTrace, TaskKind, Workload};

    fn setup(rate: f64, n: usize, deadline_ms: f64) -> (Ensemble, Workload, SchembleConfig) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let art = SchembleArtifacts::build_small(&ens, &task.default_generator(1), 1);
        let gen = task.default_generator(1);
        let w = Workload::generate(
            &gen,
            &PoissonTrace { rate_per_sec: rate, n },
            &DeadlinePolicy::constant_millis(deadline_ms),
            7,
        );
        let config = SchembleConfig::new(
            Box::new(DpScheduler::default()),
            OnlineScorer::Predictor(art.predictor.clone()),
            art.profile.clone(),
        );
        (ens, w, config)
    }

    #[test]
    fn inactive_threshold_changes_no_decision() {
        // A policy whose threshold can never be crossed must be
        // indistinguishable from no policy at all, record for record.
        let (ens, w, mut config) = setup(25.0, 200, 120.0);
        let base = run_schemble(&ens, &config, &w, 5);
        config.anytime = Some(AnytimePolicy { confidence_threshold: 2.0 });
        let inert = run_schemble(&ens, &config, &w, 5);
        assert_eq!(base.records(), inert.records());
    }

    #[test]
    fn active_policy_saves_work_without_wrecking_accuracy() {
        let (ens, w, mut config) = setup(25.0, 300, 120.0);
        let full = run_schemble(&ens, &config, &w, 5);
        config.anytime = Some(AnytimePolicy::default());
        let anytime = run_schemble(&ens, &config, &w, 5);
        assert!(
            anytime.mean_models_used() < full.mean_models_used(),
            "anytime {} vs full {} models/query — nothing was quit",
            anytime.mean_models_used(),
            full.mean_models_used()
        );
        assert!(
            anytime.accuracy() > full.accuracy() - 0.05,
            "anytime acc {} vs full {}",
            anytime.accuracy(),
            full.accuracy()
        );
    }

    #[test]
    fn anytime_runs_are_deterministic() {
        let (ens, w, mut config) = setup(25.0, 200, 120.0);
        config.anytime = Some(AnytimePolicy::default());
        let a = run_schemble(&ens, &config, &w, 5);
        let b = run_schemble(&ens, &config, &w, 5);
        assert_eq!(a.records(), b.records());
    }
}

#[cfg(test)]
mod batching_tests {
    use super::*;
    use crate::artifacts::SchembleArtifacts;
    use crate::scheduler::DpScheduler;
    use schemble_data::{DeadlinePolicy, PoissonTrace, TaskKind, Workload};

    fn setup(rate: f64, n: usize, deadline_ms: f64) -> (Ensemble, Workload, SchembleConfig) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let art = SchembleArtifacts::build_small(&ens, &task.default_generator(1), 1);
        let gen = task.default_generator(1);
        let w = Workload::generate(
            &gen,
            &PoissonTrace { rate_per_sec: rate, n },
            &DeadlinePolicy::constant_millis(deadline_ms),
            7,
        );
        let config = SchembleConfig::new(
            Box::new(DpScheduler::default()),
            OnlineScorer::Predictor(art.predictor.clone()),
            art.profile.clone(),
        );
        (ens, w, config)
    }

    #[test]
    fn batch_max_one_changes_no_decision() {
        // A batch cap of one must be indistinguishable from no batching at
        // all, record for record — the degradation guarantee the serve-side
        // property tests extend to bytes of exported state.
        let (ens, w, mut config) = setup(25.0, 200, 120.0);
        let base = run_schemble(&ens, &config, &w, 5);
        config.batching = Some(BatchConfig::new(1, SimDuration::from_millis(2)));
        let inert = run_schemble(&ens, &config, &w, 5);
        assert_eq!(base.records(), inert.records());
    }

    #[test]
    fn batching_completes_more_under_saturation() {
        // Deep saturation: the batch curve's sublinear service time lets a
        // batching backend retire strictly more queries than serial service.
        let (ens, w, mut config) = setup(70.0, 600, 120.0);
        let serial = run_schemble(&ens, &config, &w, 3);
        config.batching = Some(BatchConfig::new(16, SimDuration::from_millis(2)));
        let batched = run_schemble(&ens, &config, &w, 3);
        assert!(
            batched.completion_rate() > serial.completion_rate(),
            "batched {} vs serial {} completion",
            batched.completion_rate(),
            serial.completion_rate()
        );
    }

    #[test]
    fn batched_runs_are_deterministic() {
        let (ens, w, mut config) = setup(40.0, 300, 120.0);
        config.batching = Some(BatchConfig::new(8, SimDuration::from_millis(2)));
        let a = run_schemble(&ens, &config, &w, 5);
        let b = run_schemble(&ens, &config, &w, 5);
        assert_eq!(a.records(), b.records());
    }
}

#[cfg(test)]
mod fast_path_tests {
    use super::*;
    use crate::artifacts::SchembleArtifacts;
    use crate::scheduler::DpScheduler;
    use schemble_data::{DeadlinePolicy, PoissonTrace, TaskKind, Workload};

    fn config_with_fast_path(fast: bool) -> (Ensemble, Workload, SchembleConfig) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let art = SchembleArtifacts::build_small(&ens, &gen, 1);
        let w = Workload::generate(
            &gen,
            &PoissonTrace { rate_per_sec: 3.0, n: 150 },
            &DeadlinePolicy::constant_millis(150.0),
            7,
        );
        let mut config = SchembleConfig::new(
            Box::new(DpScheduler::default()),
            OnlineScorer::Predictor(art.predictor.clone()),
            art.profile.clone(),
        );
        config.fast_path = fast;
        (ens, w, config)
    }

    #[test]
    fn fast_path_cuts_light_load_latency() {
        let (ens, w, slow) = config_with_fast_path(false);
        let (_, _, fast) = config_with_fast_path(true);
        let base = run_schemble(&ens, &slow, &w, 3);
        let quick = run_schemble(&ens, &fast, &w, 3);
        // At 3 qps almost every arrival hits the fast path: latency drops by
        // at least the 3 ms predictor wait.
        assert!(
            quick.latency_stats().mean + 0.002 < base.latency_stats().mean,
            "fast {:.4}s vs base {:.4}s",
            quick.latency_stats().mean,
            base.latency_stats().mean
        );
        assert!(quick.deadline_miss_rate() <= base.deadline_miss_rate() + 0.02);
        // The price: single-model answers on an unloaded system.
        assert!(quick.mean_models_used() < base.mean_models_used());
    }

    #[test]
    fn fast_path_queries_are_recorded_normally() {
        let (ens, w, fast) = config_with_fast_path(true);
        let summary = run_schemble(&ens, &fast, &w, 3);
        assert_eq!(summary.len(), w.len());
        assert_eq!(summary.completion_rate() + summary.deadline_miss_rate(), 1.0);
    }
}
