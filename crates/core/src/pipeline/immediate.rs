//! Immediate-selection pipelines (Fig. 2a–d).
//!
//! A [`SelectionPolicy`] picks a model subset the moment a query arrives;
//! tasks join per-instance FIFO queues immediately. This family covers the
//! Original pipeline (select everything), Static selection over a replica
//! [`Deployment`], and the DES/Gating baselines (feature-based selectors
//! implemented in `schemble-baselines`).

use super::eval::evaluate;
use super::{AdmissionMode, ResultAssembler};
use schemble_data::{Query, Workload};
use schemble_metrics::{QueryOutcome, QueryRecord, RunSummary};
use schemble_models::{Ensemble, ModelSet, Output};
use schemble_sim::rng::stream_rng;
use schemble_sim::{EventQueue, ServerBank, TaskId};
use std::collections::HashMap;

/// Chooses a model subset for each arriving query, immediately.
pub trait SelectionPolicy {
    /// The subset to execute for `query`.
    fn select(&mut self, query: &Query, ensemble: &Ensemble) -> ModelSet;
    /// Label for experiment output.
    fn name(&self) -> String;
}

/// The Original pipeline: every model, every query.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullEnsemblePolicy;

impl SelectionPolicy for FullEnsemblePolicy {
    fn select(&mut self, _query: &Query, ensemble: &Ensemble) -> ModelSet {
        ensemble.full_set()
    }
    fn name(&self) -> String {
        "Original".to_string()
    }
}

/// Static selection: the same subset for every query.
#[derive(Debug, Clone, Copy)]
pub struct FixedSubsetPolicy {
    /// The fixed subset (over *distinct base models*).
    pub set: ModelSet,
}

impl SelectionPolicy for FixedSubsetPolicy {
    fn select(&mut self, _query: &Query, _ensemble: &Ensemble) -> ModelSet {
        self.set
    }
    fn name(&self) -> String {
        format!("Static{}", self.set)
    }
}

/// A physical deployment: which base model each server instance hosts.
/// Static selection frees memory by dropping unchosen models and spends it
/// on replicas of chosen ones (Fig. 2b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deployment {
    /// `hosts[instance] = base model index`.
    pub hosts: Vec<usize>,
}

impl Deployment {
    /// One instance per base model, in order — the non-replicated layout
    /// used by Original/DES/Gating/Schemble.
    pub fn identity(m: usize) -> Self {
        Self { hosts: (0..m).collect() }
    }

    /// Instances hosting base model `k`.
    pub fn instances_of(&self, k: usize) -> impl Iterator<Item = usize> + '_ {
        self.hosts
            .iter()
            .enumerate()
            .filter_map(move |(i, &h)| (h == k).then_some(i))
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when no instances exist.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }
}

#[derive(Debug)]
struct Pending {
    set: ModelSet,
    outputs: Vec<(usize, Output)>,
    expected: usize,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(usize),
    TaskDone { instance: usize, query: u64 },
}

/// Runs an immediate-selection pipeline over a workload.
///
/// In [`AdmissionMode::Reject`] a query is rejected at arrival when its
/// estimated completion (per-instance queue depth + nominal latency) exceeds
/// its deadline. Rejected and never-completed queries are recorded as missed.
pub fn run_immediate(
    ensemble: &Ensemble,
    deployment: &Deployment,
    policy: &mut dyn SelectionPolicy,
    assembler: &ResultAssembler,
    workload: &Workload,
    admission: AdmissionMode,
    seed: u64,
) -> RunSummary {
    let mut events: EventQueue<Event> = EventQueue::new();
    for (i, q) in workload.queries.iter().enumerate() {
        events.push(q.arrival, Event::Arrival(i));
    }
    let mut servers = ServerBank::new(deployment.len());
    // Per-instance duration of the *next started* task is sampled at start.
    let mut lat_rng = stream_rng(seed, "immediate-latency");
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    let mut records: Vec<QueryRecord> = workload
        .queries
        .iter()
        .map(|q| QueryRecord {
            id: q.id,
            arrival: q.arrival,
            deadline: q.deadline,
            completion: None,
            outcome: QueryOutcome::Missed,
            models_used: 0,
        })
        .collect();

    // instance backlog durations are attached at enqueue time.
    while let Some((now, event)) = events.pop() {
        match event {
            Event::Arrival(i) => {
                let query = &workload.queries[i];
                let set = policy.select(query, ensemble);
                assert!(!set.is_empty(), "policy must select at least one model");
                // Choose the least-loaded instance per selected model.
                let chosen: Vec<usize> = set
                    .iter()
                    .map(|k| {
                        deployment
                            .instances_of(k)
                            .min_by_key(|&inst| servers.get(inst).available_at(now))
                            .unwrap_or_else(|| {
                                panic!("deployment hosts no instance of model {k}")
                            })
                    })
                    .collect();
                if admission == AdmissionMode::Reject {
                    let est = chosen
                        .iter()
                        .map(|&inst| {
                            servers.get(inst).available_at(now)
                                + ensemble.latency(deployment.hosts[inst]).planned()
                        })
                        .max()
                        .expect("non-empty set");
                    if est > query.deadline {
                        continue; // rejected; record stays Missed.
                    }
                }
                records[i].models_used = set.len();
                pending.insert(
                    query.id,
                    Pending { set, outputs: Vec::new(), expected: set.len() },
                );
                for &inst in &chosen {
                    let model = deployment.hosts[inst];
                    let dur = ensemble.latency(model).sample(&mut lat_rng);
                    let server = servers.get_mut(inst);
                    server.enqueue(TaskId(query.id), dur);
                    if let Some(run) = server.start_next(now) {
                        events.push(
                            run.completes_at,
                            Event::TaskDone { instance: inst, query: run.task.0 },
                        );
                    }
                }
            }
            Event::TaskDone { instance, query } => {
                servers.get_mut(instance).complete(TaskId(query), now);
                let model = deployment.hosts[instance];
                let q = &workload.queries[query as usize];
                let entry = pending.get_mut(&query).expect("completion for unknown query");
                // Replicated deployments may run the same model once; outputs
                // are keyed by base model.
                entry.outputs.push((model, ensemble.models[model].infer(&q.sample, &ensemble.spec)));
                if entry.outputs.len() == entry.expected {
                    let done = pending.remove(&query).expect("present");
                    let mut outputs = done.outputs;
                    outputs.sort_by_key(|(k, _)| *k);
                    let result = assembler.assemble(ensemble, &outputs, done.set);
                    let (correct, score) = evaluate(ensemble, &q.sample, &result);
                    records[query as usize].completion = Some(now);
                    records[query as usize].outcome =
                        QueryOutcome::Completed { correct, score };
                }
                // Freed instance: start its next backlog task.
                if let Some(run) = servers.get_mut(instance).start_next(now) {
                    events.push(
                        run.completes_at,
                        Event::TaskDone { instance, query: run.task.0 },
                    );
                }
            }
        }
    }
    assert!(pending.is_empty(), "simulation drained with pending queries");
    let usage = (0..ensemble.m())
        .map(|k| {
            let mut busy = 0.0;
            let mut tasks = 0u64;
            let mut instances = 0usize;
            for inst in deployment.instances_of(k) {
                busy += servers.get(inst).busy_time().as_secs_f64();
                tasks += servers.get(inst).completed_tasks();
                instances += 1;
            }
            schemble_metrics::ModelUsage {
                name: ensemble.models[k].name.clone(),
                busy_secs: busy,
                tasks,
                instances,
            }
        })
        .collect();
    RunSummary::new(records).with_usage(usage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_data::{DeadlinePolicy, PoissonTrace, TaskKind, Workload};

    fn workload(rate: f64, n: usize, deadline_ms: f64) -> (Ensemble, Workload) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let w = Workload::generate(
            &gen,
            &PoissonTrace { rate_per_sec: rate, n },
            &DeadlinePolicy::constant_millis(deadline_ms),
            7,
        );
        (ens, w)
    }

    #[test]
    fn light_load_original_pipeline_is_perfect() {
        let (ens, w) = workload(2.0, 200, 150.0);
        let summary = run_immediate(
            &ens,
            &Deployment::identity(3),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::Reject,
            3,
        );
        assert!(summary.deadline_miss_rate() < 0.02, "dmr {}", summary.deadline_miss_rate());
        assert!(summary.accuracy() > 0.97, "acc {}", summary.accuracy());
        assert_eq!(summary.completion_rate(), 1.0 - summary.deadline_miss_rate());
    }

    #[test]
    fn overload_blows_up_the_original_pipeline() {
        // 60 qps into a 3-model ensemble whose slowest member takes 48 ms —
        // the Fig. 1a situation: massive deadline misses.
        let (ens, w) = workload(60.0, 600, 120.0);
        let summary = run_immediate(
            &ens,
            &Deployment::identity(3),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::Reject,
            3,
        );
        assert!(
            summary.deadline_miss_rate() > 0.3,
            "expected heavy misses, dmr {}",
            summary.deadline_miss_rate()
        );
    }

    #[test]
    fn static_with_replicas_survives_more_load() {
        let (ens, w) = workload(60.0, 600, 120.0);
        // BiLSTM + RoBERTa, replicating the bottleneck (RoBERTa, 42 ms).
        let deployment = Deployment { hosts: vec![0, 1, 1] };
        let mut policy = FixedSubsetPolicy { set: ModelSet::from_indices(&[0, 1]) };
        let summary = run_immediate(
            &ens,
            &deployment,
            &mut policy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::Reject,
            3,
        );
        let full = run_immediate(
            &ens,
            &Deployment::identity(3),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::Reject,
            3,
        );
        assert!(
            summary.deadline_miss_rate() < full.deadline_miss_rate() * 0.7,
            "static {} vs original {}",
            summary.deadline_miss_rate(),
            full.deadline_miss_rate()
        );
    }

    #[test]
    fn force_all_completes_everything() {
        let (ens, w) = workload(40.0, 300, 100.0);
        let summary = run_immediate(
            &ens,
            &Deployment::identity(3),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::ForceAll,
            3,
        );
        assert_eq!(summary.completion_rate(), 1.0);
        // Queue blocking should push latency way past the service time.
        assert!(summary.latency_stats().max > 0.3);
    }

    #[test]
    fn run_is_deterministic() {
        let (ens, w) = workload(20.0, 150, 120.0);
        let go = || {
            run_immediate(
                &ens,
                &Deployment::identity(3),
                &mut FullEnsemblePolicy,
                &ResultAssembler::Direct,
                &w,
                AdmissionMode::Reject,
                11,
            )
        };
        let a = go();
        let b = go();
        assert_eq!(a.records(), b.records());
    }
}
