//! Immediate-selection pipelines (Fig. 2a–d).
//!
//! A [`SelectionPolicy`] picks a model subset the moment a query arrives;
//! tasks join per-instance FIFO queues immediately. This family covers the
//! Original pipeline (select everything), Static selection over a replica
//! [`Deployment`], and the DES/Gating baselines (feature-based selectors
//! implemented in `schemble-baselines`).

use super::{AdmissionMode, ResultAssembler};
use crate::backend::{ExecutionBackend, SimBackend};
use crate::engine::{ImmediateEngine, PipelineEngine};
use schemble_data::{Query, Workload};
use schemble_metrics::RunSummary;
use schemble_models::{Ensemble, ModelSet};
use schemble_trace::TraceSink;
use std::sync::Arc;

/// Chooses a model subset for each arriving query, immediately.
pub trait SelectionPolicy {
    /// The subset to execute for `query`.
    fn select(&mut self, query: &Query, ensemble: &Ensemble) -> ModelSet;
    /// Label for experiment output.
    fn name(&self) -> String;
}

/// The Original pipeline: every model, every query.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullEnsemblePolicy;

impl SelectionPolicy for FullEnsemblePolicy {
    fn select(&mut self, _query: &Query, ensemble: &Ensemble) -> ModelSet {
        ensemble.full_set()
    }
    fn name(&self) -> String {
        "Original".to_string()
    }
}

/// Static selection: the same subset for every query.
#[derive(Debug, Clone, Copy)]
pub struct FixedSubsetPolicy {
    /// The fixed subset (over *distinct base models*).
    pub set: ModelSet,
}

impl SelectionPolicy for FixedSubsetPolicy {
    fn select(&mut self, _query: &Query, _ensemble: &Ensemble) -> ModelSet {
        self.set
    }
    fn name(&self) -> String {
        format!("Static{}", self.set)
    }
}

/// A physical deployment: which base model each server instance hosts.
/// Static selection frees memory by dropping unchosen models and spends it
/// on replicas of chosen ones (Fig. 2b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deployment {
    /// `hosts[instance] = base model index`.
    pub hosts: Vec<usize>,
}

impl Deployment {
    /// One instance per base model, in order — the non-replicated layout
    /// used by Original/DES/Gating/Schemble.
    pub fn identity(m: usize) -> Self {
        Self { hosts: (0..m).collect() }
    }

    /// Instances hosting base model `k`.
    pub fn instances_of(&self, k: usize) -> impl Iterator<Item = usize> + '_ {
        self.hosts.iter().enumerate().filter_map(move |(i, &h)| (h == k).then_some(i))
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when no instances exist.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }
}

/// Runs an immediate-selection pipeline over a workload in the
/// discrete-event simulator.
///
/// In [`AdmissionMode::Reject`] a query is rejected at arrival when its
/// estimated completion (per-instance queue depth + nominal latency) exceeds
/// its deadline. Rejected and never-completed queries are recorded as missed.
///
/// This is a thin driver: all decision logic lives in
/// [`ImmediateEngine`], executed here over a
/// [`SimBackend`]. The `schemble-serve` runtime
/// drives the identical engine over worker threads.
pub fn run_immediate(
    ensemble: &Ensemble,
    deployment: &Deployment,
    policy: &mut dyn SelectionPolicy,
    assembler: &ResultAssembler,
    workload: &Workload,
    admission: AdmissionMode,
    seed: u64,
) -> RunSummary {
    run_immediate_traced(
        ensemble,
        deployment,
        policy,
        assembler,
        workload,
        admission,
        seed,
        TraceSink::disabled(),
    )
}

/// [`run_immediate`] with lifecycle events emitted into `trace`.
#[allow(clippy::too_many_arguments)]
pub fn run_immediate_traced(
    ensemble: &Ensemble,
    deployment: &Deployment,
    policy: &mut dyn SelectionPolicy,
    assembler: &ResultAssembler,
    workload: &Workload,
    admission: AdmissionMode,
    seed: u64,
    trace: Arc<TraceSink>,
) -> RunSummary {
    let latencies = deployment.hosts.iter().map(|&h| ensemble.latency(h)).collect();
    let mut backend =
        SimBackend::new(latencies, seed, "immediate-latency").with_trace(trace.clone());
    for (i, q) in workload.queries.iter().enumerate() {
        backend.push_arrival(q.arrival, i);
    }
    let mut engine =
        ImmediateEngine::new(ensemble, deployment, policy, assembler, admission, workload)
            .with_trace(trace);
    while let Some((now, event)) = backend.pop_event() {
        engine.handle(event, now, &mut backend);
    }
    let usage = backend.usage();
    engine.into_summary(usage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_data::{DeadlinePolicy, PoissonTrace, TaskKind, Workload};

    fn workload(rate: f64, n: usize, deadline_ms: f64) -> (Ensemble, Workload) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let w = Workload::generate(
            &gen,
            &PoissonTrace { rate_per_sec: rate, n },
            &DeadlinePolicy::constant_millis(deadline_ms),
            7,
        );
        (ens, w)
    }

    #[test]
    fn light_load_original_pipeline_is_perfect() {
        let (ens, w) = workload(2.0, 200, 150.0);
        let summary = run_immediate(
            &ens,
            &Deployment::identity(3),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::Reject,
            3,
        );
        assert!(summary.deadline_miss_rate() < 0.02, "dmr {}", summary.deadline_miss_rate());
        assert!(summary.accuracy() > 0.97, "acc {}", summary.accuracy());
        assert_eq!(summary.completion_rate(), 1.0 - summary.deadline_miss_rate());
    }

    #[test]
    fn overload_blows_up_the_original_pipeline() {
        // 60 qps into a 3-model ensemble whose slowest member takes 48 ms —
        // the Fig. 1a situation: massive deadline misses.
        let (ens, w) = workload(60.0, 600, 120.0);
        let summary = run_immediate(
            &ens,
            &Deployment::identity(3),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::Reject,
            3,
        );
        assert!(
            summary.deadline_miss_rate() > 0.3,
            "expected heavy misses, dmr {}",
            summary.deadline_miss_rate()
        );
    }

    #[test]
    fn static_with_replicas_survives_more_load() {
        let (ens, w) = workload(60.0, 600, 120.0);
        // BiLSTM + RoBERTa, replicating the bottleneck (RoBERTa, 42 ms).
        let deployment = Deployment { hosts: vec![0, 1, 1] };
        let mut policy = FixedSubsetPolicy { set: ModelSet::from_indices(&[0, 1]) };
        let summary = run_immediate(
            &ens,
            &deployment,
            &mut policy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::Reject,
            3,
        );
        let full = run_immediate(
            &ens,
            &Deployment::identity(3),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::Reject,
            3,
        );
        assert!(
            summary.deadline_miss_rate() < full.deadline_miss_rate() * 0.7,
            "static {} vs original {}",
            summary.deadline_miss_rate(),
            full.deadline_miss_rate()
        );
    }

    #[test]
    fn force_all_completes_everything() {
        let (ens, w) = workload(40.0, 300, 100.0);
        let summary = run_immediate(
            &ens,
            &Deployment::identity(3),
            &mut FullEnsemblePolicy,
            &ResultAssembler::Direct,
            &w,
            AdmissionMode::ForceAll,
            3,
        );
        assert_eq!(summary.completion_rate(), 1.0);
        // Queue blocking should push latency way past the service time.
        assert!(summary.latency_stats().max > 0.3);
    }

    #[test]
    fn run_is_deterministic() {
        let (ens, w) = workload(20.0, 150, 120.0);
        let go = || {
            run_immediate(
                &ens,
                &Deployment::identity(3),
                &mut FullEnsemblePolicy,
                &ResultAssembler::Direct,
                &w,
                AdmissionMode::Reject,
                11,
            )
        };
        let a = go();
        let b = go();
        assert_eq!(a.records(), b.records());
    }
}
