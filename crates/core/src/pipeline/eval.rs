//! Result scoring against the full ensemble's output (§VIII: "we refer to
//! results from the original deep ensemble as the ground truth").

use schemble_models::{Ensemble, Output, Sample, TaskSpec};

/// Scores a returned result for one query.
///
/// Returns `(correct, score)` where `score` is what accumulates into the
/// accuracy/mAP columns: plain 0/1 agreement for classification and
/// regression, average precision (1/rank of the reference's top candidate)
/// for retrieval.
pub fn evaluate(ensemble: &Ensemble, sample: &Sample, result: &Output) -> (bool, f64) {
    let reference = ensemble.ensemble_output(sample);
    let correct = result.agrees_with(&reference, &ensemble.spec);
    let score = match ensemble.spec {
        TaskSpec::Retrieval { .. } => {
            let relevant = reference.predicted_class();
            1.0 / result.rank_of(relevant) as f64
        }
        _ => {
            if correct {
                1.0
            } else {
                0.0
            }
        }
    };
    (correct, score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_models::zoo;
    use schemble_models::{DifficultyDist, ModelSet, SampleGenerator};

    #[test]
    fn full_ensemble_result_scores_perfectly() {
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        for s in gen.batch(0, 50) {
            let result = ens.ensemble_output(&s);
            let (correct, score) = evaluate(&ens, &s, &result);
            assert!(correct);
            assert_eq!(score, 1.0);
        }
    }

    #[test]
    fn retrieval_scores_by_reciprocal_rank() {
        let ens = zoo::image_retrieval(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let mut saw_partial = false;
        for s in gen.batch(0, 300) {
            let result = ens.subset_output(&s, ModelSet::singleton(0));
            let (correct, score) = evaluate(&ens, &s, &result);
            assert!((0.0..=1.0).contains(&score));
            if correct {
                assert_eq!(score, 1.0, "top-1 agreement means rank 1");
            } else if score > 0.0 {
                saw_partial = true;
                assert!(score < 1.0);
            }
        }
        assert!(saw_partial, "expected some partial-credit retrieval results");
    }

    #[test]
    fn regression_tolerance_is_respected() {
        let ens = zoo::vehicle_counting(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Fixed(0.05), 5);
        let mut correct_count = 0;
        let samples = gen.batch(0, 200);
        for s in &samples {
            let result = ens.subset_output(&s.clone(), ModelSet::full(3));
            let (correct, score) = evaluate(&ens, s, &result);
            assert!(correct && score == 1.0);
            correct_count += 1;
        }
        assert_eq!(correct_count, 200);
    }
}
