//! Online difficulty estimation.
//!
//! At serving time the base models have not run yet, so the discrepancy
//! score must be *predicted* from the query's features (§V-C). Three scorers
//! cover the paper's variants:
//!
//! * [`OnlineScorer::Predictor`] — the trained two-headed network (Schemble);
//! * [`OnlineScorer::Oracle`] — the true score, computed by secretly running
//!   the base models (the `Schemble*(Oracle)` upper bound of Fig. 16);
//! * [`OnlineScorer::Constant`] — every query gets the same score
//!   (`Schemble(t)`, the no-difficulty ablation of Exp-3).

use crate::discrepancy::DiscrepancyScorer;
use rand::Rng;
use schemble_models::{Ensemble, Output, Sample, TaskSpec};
use schemble_nn::predictor::{PredictorConfig, TaskLoss};
use schemble_nn::seq_predictor::SeqPredictorConfig;
use schemble_nn::{DiscrepancyPredictor, SequencePredictor};
use schemble_tensor::Matrix;

/// A difficulty scorer usable at serving time.
///
/// The variants intentionally differ in size — scorers are constructed once
/// per run, never in hot loops.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum OnlineScorer {
    /// Trained MLP over query features.
    Predictor(DiscrepancyPredictor),
    /// Trained MV-LSTM-style sequence network (the paper's text-modality
    /// architecture).
    SeqPredictor(SequencePredictor),
    /// The offline scorer run on demand (oracle ablation).
    Oracle(DiscrepancyScorer),
    /// Fixed score for every query.
    Constant(f64),
}

impl OnlineScorer {
    /// Scores one query.
    pub fn score(&self, sample: &Sample, ensemble: &Ensemble) -> f64 {
        match self {
            OnlineScorer::Predictor(nn) => nn.predict_score(&sample.features),
            OnlineScorer::SeqPredictor(nn) => nn.predict_score(&sample.features),
            OnlineScorer::Oracle(scorer) => scorer.score(ensemble, sample),
            OnlineScorer::Constant(c) => *c,
        }
    }

    /// Scores a batch of queries in one predictor forward pass.
    ///
    /// Returns one score per sample, in order, each bit-identical to what
    /// [`OnlineScorer::score`] would produce for that sample alone (pinned by
    /// a test): the NN paths run a single batched matmul whose rows are
    /// computed independently, and the oracle/constant paths are per-sample
    /// by construction. The engine uses this to prefetch scores for a window
    /// of arrivals, amortising per-forward overhead without changing any
    /// scheduling decision.
    pub fn score_batch(&self, samples: &[&Sample], ensemble: &Ensemble) -> Vec<f64> {
        if samples.is_empty() {
            return Vec::new();
        }
        match self {
            OnlineScorer::Predictor(nn) => {
                let dim = samples[0].features.len();
                let m = Matrix::from_fn(samples.len(), dim, |r, c| samples[r].features[c]);
                nn.predict_scores(&m)
            }
            OnlineScorer::SeqPredictor(nn) => {
                let dim = samples[0].features.len();
                let m = Matrix::from_fn(samples.len(), dim, |r, c| samples[r].features[c]);
                nn.predict_scores(&m)
            }
            OnlineScorer::Oracle(scorer) => {
                samples.iter().map(|s| scorer.score(ensemble, s)).collect()
            }
            OnlineScorer::Constant(c) => vec![*c; samples.len()],
        }
    }

    /// Short label for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            OnlineScorer::Predictor(_) => "predictor",
            OnlineScorer::SeqPredictor(_) => "seq-predictor",
            OnlineScorer::Oracle(_) => "oracle",
            OnlineScorer::Constant(_) => "constant",
        }
    }
}

/// Trains the two-headed predictor on historical samples labelled with their
/// true discrepancy scores (Eq. 2's training setup: task label = ensemble
/// output, `dis` = ground-truth score).
pub fn train_score_predictor(
    ensemble: &Ensemble,
    history: &[Sample],
    scores: &[f64],
    rng: &mut impl Rng,
) -> DiscrepancyPredictor {
    train_score_predictor_with_lambda(ensemble, history, scores, 0.2, rng)
}

/// Trains the MV-LSTM-style sequence predictor on the same data layout as
/// [`train_score_predictor`].
pub fn train_seq_score_predictor(
    ensemble: &Ensemble,
    history: &[Sample],
    scores: &[f64],
    rng: &mut impl Rng,
) -> SequencePredictor {
    assert_eq!(history.len(), scores.len(), "history/scores length mismatch");
    assert!(!history.is_empty(), "cannot train predictor on empty history");
    let feat_dim = history[0].features.len();
    let features = Matrix::from_fn(history.len(), feat_dim, |r, c| history[r].features[c]);
    let (task_loss, task_labels) = task_labels_for(ensemble, history);
    let config = SeqPredictorConfig::default_for(feat_dim, task_loss);
    let mut predictor = SequencePredictor::new(config, rng);
    predictor.fit(&features, &task_labels, scores, rng);
    predictor
}

/// Like [`train_score_predictor`] with an explicit Eq. 2 weight λ — the
/// `exp_ablation` driver sweeps it (the paper fixes λ = 0.2).
pub fn train_score_predictor_with_lambda(
    ensemble: &Ensemble,
    history: &[Sample],
    scores: &[f64],
    lambda: f64,
    rng: &mut impl Rng,
) -> DiscrepancyPredictor {
    assert_eq!(history.len(), scores.len(), "history/scores length mismatch");
    assert!(!history.is_empty(), "cannot train predictor on empty history");
    let feat_dim = history[0].features.len();
    let features = Matrix::from_fn(history.len(), feat_dim, |r, c| history[r].features[c]);
    let (task_loss, task_labels) = task_labels_for(ensemble, history);
    let config = PredictorConfig { lambda, ..PredictorConfig::default_for(feat_dim, task_loss) };
    let mut predictor = DiscrepancyPredictor::new(config, rng);
    predictor.fit(&features, &task_labels, scores, rng);
    predictor
}

/// Task-head labels per Eq. 2: the ensemble's output stands in for the
/// ground truth. Binary classification keeps the positive-class probability;
/// other categorical tasks use the ensemble's top-1 confidence; regression
/// rescales the scalar into a trainable range.
fn task_labels_for(ensemble: &Ensemble, history: &[Sample]) -> (TaskLoss, Vec<f64>) {
    match ensemble.spec {
        TaskSpec::Classification { num_classes: 2 } => {
            let labels = history
                .iter()
                .map(|s| match ensemble.ensemble_output(s) {
                    Output::Probs(p) => p[1],
                    Output::Scalar(_) => unreachable!("categorical spec"),
                })
                .collect();
            (TaskLoss::Binary, labels)
        }
        TaskSpec::Classification { .. } | TaskSpec::Retrieval { .. } => {
            let labels = history
                .iter()
                .map(|s| match ensemble.ensemble_output(s) {
                    Output::Probs(p) => p.iter().cloned().fold(0.0, f64::max),
                    Output::Scalar(_) => unreachable!("categorical spec"),
                })
                .collect();
            (TaskLoss::Regression, labels)
        }
        TaskSpec::Regression { .. } => {
            // Counts live in roughly [0, 25]; scale into [0, 1] for training.
            let labels =
                history.iter().map(|s| ensemble.ensemble_output(s).value() / 25.0).collect();
            (TaskLoss::Regression, labels)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrepancy::DifficultyMetric;
    use schemble_models::zoo;
    use schemble_models::{DifficultyDist, SampleGenerator};
    use schemble_sim::rng::stream_rng;
    use schemble_tensor::stats::pearson;

    #[test]
    fn trained_predictor_ranks_like_the_oracle() {
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let history = gen.batch(0, 1200);
        let oracle = DiscrepancyScorer::fit(&ens, &history, DifficultyMetric::Discrepancy);
        let scores = oracle.score_batch(&ens, &history);
        let mut rng = stream_rng(7, "predictor");
        let nn = train_score_predictor(&ens, &history, &scores, &mut rng);

        // Evaluate on *fresh* samples.
        let test = gen.batch(5000, 500);
        let truth = oracle.score_batch(&ens, &test);
        let predicted: Vec<f64> = test.iter().map(|s| nn.predict_score(&s.features)).collect();
        let corr = pearson(&predicted, &truth);
        assert!(corr > 0.25, "predictor/oracle correlation too weak: {corr:.3}");
    }

    #[test]
    fn online_scorer_variants() {
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let history = gen.batch(0, 400);
        let oracle = DiscrepancyScorer::fit(&ens, &history, DifficultyMetric::Discrepancy);
        let s = gen.sample(999);

        let constant = OnlineScorer::Constant(0.42);
        assert_eq!(constant.score(&s, &ens), 0.42);
        assert_eq!(constant.name(), "constant");

        let oracle_scorer = OnlineScorer::Oracle(oracle.clone());
        let direct = oracle.score(&ens, &s);
        assert_eq!(oracle_scorer.score(&s, &ens), direct);
        assert_eq!(oracle_scorer.name(), "oracle");
    }

    #[test]
    fn score_batch_is_bit_identical_to_per_sample_scores() {
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let history = gen.batch(0, 300);
        let oracle = DiscrepancyScorer::fit(&ens, &history, DifficultyMetric::Discrepancy);
        let truth = oracle.score_batch(&ens, &history);
        let mut rng = stream_rng(7, "predictor-batch");
        let nn = train_score_predictor(&ens, &history, &truth, &mut rng);
        let mut seq_rng = stream_rng(7, "seq-predictor-batch");
        let seq = crate::predictor::train_seq_score_predictor(&ens, &history, &truth, &mut seq_rng);

        let test = gen.batch(9000, 40);
        let refs: Vec<&Sample> = test.iter().collect();
        for scorer in [
            OnlineScorer::Predictor(nn),
            OnlineScorer::SeqPredictor(seq),
            OnlineScorer::Oracle(oracle),
            OnlineScorer::Constant(0.37),
        ] {
            let batched = scorer.score_batch(&refs, &ens);
            assert_eq!(batched.len(), refs.len());
            for (i, s) in test.iter().enumerate() {
                let single = scorer.score(s, &ens);
                assert_eq!(
                    single.to_bits(),
                    batched[i].to_bits(),
                    "{} diverged at sample {i}",
                    scorer.name()
                );
            }
            assert!(scorer.score_batch(&[], &ens).is_empty());
        }
    }

    #[test]
    fn regression_task_labels_are_bounded() {
        let ens = zoo::vehicle_counting(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let history = gen.batch(0, 200);
        let (loss, labels) = task_labels_for(&ens, &history);
        assert_eq!(loss, TaskLoss::Regression);
        assert!(labels.iter().all(|&l| (-0.5..=1.5).contains(&l)));
    }
}

#[cfg(test)]
mod seq_tests {
    use super::*;
    use crate::discrepancy::{DifficultyMetric, DiscrepancyScorer};
    use schemble_models::zoo;
    use schemble_models::{DifficultyDist, SampleGenerator};
    use schemble_sim::rng::stream_rng;
    use schemble_tensor::stats::pearson;

    #[test]
    fn seq_predictor_trains_and_scores() {
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let history = gen.batch(0, 500);
        let oracle = DiscrepancyScorer::fit(&ens, &history, DifficultyMetric::Discrepancy);
        let scores = oracle.score_batch(&ens, &history);
        let mut rng = stream_rng(3, "seq-predictor");
        let nn = train_seq_score_predictor(&ens, &history, &scores, &mut rng);
        let test = gen.batch(5000, 300);
        let truth = oracle.score_batch(&ens, &test);
        let predicted: Vec<f64> = test.iter().map(|s| nn.predict_score(&s.features)).collect();
        let corr = pearson(&predicted, &truth);
        assert!(corr > 0.2, "seq predictor correlation too weak: {corr:.3}");
        let scorer = OnlineScorer::SeqPredictor(nn);
        assert_eq!(scorer.name(), "seq-predictor");
        let s = gen.sample(42);
        assert!((0.0..=1.0).contains(&scorer.score(&s, &ens)));
    }
}
