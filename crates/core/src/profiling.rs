//! Model-combination accuracy profiling (§V-D).
//!
//! Historical samples are bucketed into `B` bins by discrepancy score; inside
//! each bin the accuracy of every model subset is measured *against the full
//! ensemble's output* (the evaluation ground truth of §VIII). The resulting
//! table `U(bin, S)` is the scheduler's reward function.
//!
//! Two refinements from the paper:
//!
//! * **Monotone repair.** Assumption 1 (diminishing marginal utility, which
//!   implies supersets never hurt) can be violated by sampling noise in
//!   sparse bins; the table is repaired so `S ⊆ S' ⇒ U(b,S) ≤ U(b,S')`.
//! * **Marginal-reward estimation (Eq. 3).** When the ensemble grows,
//!   profiling all `2^m` subsets is expensive; subsets larger than a cutoff
//!   are estimated from pair/singleton profiles with a fitted diminishing
//!   factor `γ_k` (Fig. 20a checks the estimation error).

use schemble_models::{Ensemble, ModelSet, Sample};

/// The per-bin subset-accuracy table.
#[derive(Debug, Clone)]
pub struct AccuracyProfile {
    bins: usize,
    m: usize,
    /// `table[bin][set.0]` = accuracy of `set` in `bin` (index 0 = ∅ = 0.0).
    table: Vec<Vec<f64>>,
    /// Samples observed per bin.
    counts: Vec<usize>,
}

impl AccuracyProfile {
    /// Default number of score bins.
    pub const DEFAULT_BINS: usize = 10;

    /// Profiles every subset exactly.
    ///
    /// `scores[i]` is the discrepancy score of `history[i]` in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if lengths mismatch, history is empty, or `bins == 0`.
    pub fn fit(ensemble: &Ensemble, history: &[Sample], scores: &[f64], bins: usize) -> Self {
        Self::fit_with_cutoff(ensemble, history, scores, bins, ensemble.m())
    }

    /// Profiles subsets of size ≤ `profile_cutoff` exactly and estimates the
    /// rest with Eq. 3.
    pub fn fit_with_cutoff(
        ensemble: &Ensemble,
        history: &[Sample],
        scores: &[f64],
        bins: usize,
        profile_cutoff: usize,
    ) -> Self {
        Self::fit_with_assembler(
            ensemble,
            history,
            scores,
            bins,
            profile_cutoff,
            &crate::pipeline::ResultAssembler::Direct,
        )
    }

    /// Profiles subset accuracies with an explicit result assembler —
    /// required for stacking ensembles, whose aggregation needs missing
    /// outputs KNN-filled before the meta-classifier can run (§VII).
    pub fn fit_with_assembler(
        ensemble: &Ensemble,
        history: &[Sample],
        scores: &[f64],
        bins: usize,
        profile_cutoff: usize,
        assembler: &crate::pipeline::ResultAssembler,
    ) -> Self {
        assert!(!history.is_empty(), "cannot profile on empty history");
        assert_eq!(history.len(), scores.len(), "history/scores length mismatch");
        assert!(bins > 0, "need at least one bin");
        let m = ensemble.m();
        let n_sets = 1usize << m;
        let cutoff = profile_cutoff.min(m);

        let mut hits = vec![vec![0usize; n_sets]; bins];
        let mut counts = vec![0usize; bins];
        for (s, &score) in history.iter().zip(scores) {
            let b = bin_of_score(score, bins);
            counts[b] += 1;
            let reference = ensemble.ensemble_output(s);
            // Cache per-model outputs once; subset aggregation reuses them.
            let outputs = ensemble.infer_all(s);
            for set in ModelSet::all_nonempty(m) {
                if set.len() > cutoff {
                    continue;
                }
                let present: Vec<(usize, schemble_models::Output)> =
                    set.iter().map(|k| (k, outputs[k].clone())).collect();
                let sub = assembler.assemble(ensemble, &present, set);
                if sub.agrees_with(&reference, &ensemble.spec) {
                    hits[b][set.0 as usize] += 1;
                }
            }
        }

        // Global (all-bins) accuracies back-fill empty bins.
        let mut global = vec![0.0f64; n_sets];
        let total: usize = counts.iter().sum();
        for set_idx in 1..n_sets {
            let sum: usize = hits.iter().map(|h| h[set_idx]).sum();
            global[set_idx] = sum as f64 / total as f64;
        }

        let mut table = vec![vec![0.0f64; n_sets]; bins];
        for b in 0..bins {
            for set_idx in 1..n_sets {
                table[b][set_idx] = if counts[b] == 0 {
                    global[set_idx]
                } else {
                    hits[b][set_idx] as f64 / counts[b] as f64
                };
            }
        }

        let mut profile = Self { bins, m, table, counts };
        if cutoff < m {
            profile.estimate_large_sets(ensemble, cutoff);
        }
        profile.monotone_repair();
        profile
    }

    /// Eq. 3: estimate utilities of sets larger than `cutoff` from smaller
    /// profiles. Models are ranked by accuracy; the diminishing factor γ_k is
    /// fitted so the estimated full-profile marginals match the largest
    /// exactly-profiled size.
    fn estimate_large_sets(&mut self, ensemble: &Ensemble, cutoff: usize) {
        assert!(cutoff >= 2, "Eq. 3 needs at least pairs profiled");
        // Rank models by mean accuracy, descending (the paper sorts by acc).
        let mut order: Vec<usize> = (0..self.m).collect();
        order.sort_by(|&a, &b| {
            ensemble.models[b]
                .mean_accuracy()
                .partial_cmp(&ensemble.models[a].mean_accuracy())
                .expect("NaN accuracy")
        });
        // γ fitted on the transition from size cutoff-1 → cutoff where both
        // sides are known: γ = observed_gain / predicted_raw_gain, averaged.
        let gamma = self.fit_gamma(&order, cutoff);
        for b in 0..self.bins {
            // Build up ordered prefix sets {m1}, {m1,m2}, … estimating each
            // missing size from the previous one.
            for k in cutoff..self.m {
                let prefix = ModelSet::from_indices(&order[..k]);
                let next_model = order[k];
                let grown = prefix.with(next_model);
                if grown.len() <= cutoff {
                    continue;
                }
                let base = self.table[b][prefix.0 as usize];
                let mut marginal = 0.0;
                for &q in &order[..k] {
                    let pair = ModelSet::from_indices(&[q, next_model]);
                    let single = ModelSet::singleton(q);
                    marginal += self.table[b][pair.0 as usize] - self.table[b][single.0 as usize];
                }
                marginal /= k as f64;
                self.table[b][grown.0 as usize] = (base + gamma * marginal).clamp(0.0, 1.0);
                // Non-prefix large sets get the estimate of their own best
                // prefix-style recursion: approximate by the grown-prefix
                // value of the same size (the scheduler only needs ordered
                // growth in practice — large ensembles run ordered subsets).
                for set in ModelSet::all_nonempty(self.m) {
                    if set.len() == grown.len() && self.table[b][set.0 as usize] == 0.0 {
                        let approx: f64 = set
                            .iter()
                            .map(|i| self.table[b][ModelSet::singleton(i).0 as usize])
                            .fold(0.0, f64::max);
                        self.table[b][set.0 as usize] =
                            approx.max(self.table[b][grown.0 as usize] * 0.98);
                    }
                }
            }
        }
    }

    fn fit_gamma(&self, order: &[usize], cutoff: usize) -> f64 {
        // Use the profiled transition (cutoff-1 → cutoff) on the ordered
        // prefix to calibrate γ.
        let k = cutoff - 1;
        let prefix = ModelSet::from_indices(&order[..k]);
        let grown = ModelSet::from_indices(&order[..cutoff]);
        let next_model = order[k];
        let mut num = 0.0;
        let mut den = 0.0;
        for b in 0..self.bins {
            if self.counts[b] == 0 {
                continue;
            }
            let observed = self.table[b][grown.0 as usize] - self.table[b][prefix.0 as usize];
            let mut raw = 0.0;
            for &q in &order[..k] {
                let pair = ModelSet::from_indices(&[q, next_model]);
                raw += self.table[b][pair.0 as usize]
                    - self.table[b][ModelSet::singleton(q).0 as usize];
            }
            raw /= k as f64;
            num += observed * self.counts[b] as f64;
            den += raw * self.counts[b] as f64;
        }
        if den.abs() < 1e-9 {
            1.0
        } else {
            (num / den).clamp(0.0, 2.0)
        }
    }

    /// Enforces `S ⊆ S' ⇒ U(b,S) ≤ U(b,S')` by propagating maxima upward
    /// through single-element extensions.
    fn monotone_repair(&mut self) {
        let n_sets = 1usize << self.m;
        for b in 0..self.bins {
            // Process sets in increasing popcount order.
            let mut by_size: Vec<u32> = (1..n_sets as u32).collect();
            by_size.sort_by_key(|s| s.count_ones());
            for &set in &by_size {
                let set = ModelSet(set);
                let mut best = self.table[b][set.0 as usize];
                for k in set.iter() {
                    let smaller = set.without(k);
                    if !smaller.is_empty() {
                        best = best.max(self.table[b][smaller.0 as usize]);
                    }
                }
                self.table[b][set.0 as usize] = best;
            }
        }
    }

    /// Bin index of a score.
    pub fn bin_of(&self, score: f64) -> usize {
        bin_of_score(score, self.bins)
    }

    /// The profiled utility `U(bin(score), set)`; the empty set is worth 0.
    pub fn utility(&self, score: f64, set: ModelSet) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        self.table[self.bin_of(score)][set.0 as usize]
    }

    /// Utility vector over all `2^m` subsets for a score — the per-query
    /// reward input of Alg. 1.
    pub fn utility_vector(&self, score: f64) -> Vec<f64> {
        self.table[self.bin_of(score)].clone()
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Ensemble size.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Samples observed in bin `b`.
    pub fn bin_count(&self, b: usize) -> usize {
        self.counts[b]
    }

    /// Mean squared error of this profile's table against a reference
    /// profile (Fig. 20a compares Eq. 3 estimates with exact profiling).
    pub fn mse_against(&self, reference: &AccuracyProfile) -> f64 {
        assert_eq!(self.bins, reference.bins);
        assert_eq!(self.m, reference.m);
        let mut sum = 0.0;
        let mut n = 0usize;
        for b in 0..self.bins {
            for set_idx in 1..(1usize << self.m) {
                let d = self.table[b][set_idx] - reference.table[b][set_idx];
                sum += d * d;
                n += 1;
            }
        }
        sum / n as f64
    }
}

fn bin_of_score(score: f64, bins: usize) -> usize {
    ((score * bins as f64).floor() as isize).clamp(0, bins as isize - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrepancy::{DifficultyMetric, DiscrepancyScorer};
    use schemble_models::zoo;
    use schemble_models::{DifficultyDist, SampleGenerator};

    fn fixture() -> (Ensemble, Vec<Sample>, Vec<f64>) {
        let ens = zoo::text_matching(1);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 5);
        let h = gen.batch(0, 2000);
        let scorer = DiscrepancyScorer::fit(&ens, &h, DifficultyMetric::Discrepancy);
        let scores = scorer.score_batch(&ens, &h);
        (ens, h, scores)
    }

    #[test]
    fn full_set_utility_is_one_everywhere() {
        let (ens, h, scores) = fixture();
        let p = AccuracyProfile::fit(&ens, &h, &scores, 10);
        for b in 0..10 {
            let u = p.table[b][ens.full_set().0 as usize];
            assert!(
                (u - 1.0).abs() < 1e-9,
                "full set must match the ensemble exactly, bin {b}: {u}"
            );
        }
    }

    #[test]
    fn monotone_in_set_inclusion() {
        let (ens, h, scores) = fixture();
        let p = AccuracyProfile::fit(&ens, &h, &scores, 10);
        for b in 0..10 {
            let score = (b as f64 + 0.5) / 10.0;
            for set in ModelSet::all_nonempty(ens.m()) {
                for k in 0..ens.m() {
                    if !set.contains(k) {
                        let bigger = set.with(k);
                        assert!(
                            p.utility(score, bigger) >= p.utility(score, set) - 1e-12,
                            "monotonicity violated in bin {b}: {set} vs {bigger}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn small_sets_degrade_with_difficulty() {
        // Fig. 4b: easy bins get high accuracy for every combo; hard bins
        // show much larger error for small sets.
        let (ens, h, scores) = fixture();
        let p = AccuracyProfile::fit(&ens, &h, &scores, 10);
        let single = ModelSet::singleton(0);
        let easy = p.utility(0.05, single);
        let hard = p.utility(0.95, single);
        assert!(
            easy > hard + 0.1,
            "singleton utility should drop with difficulty: easy {easy:.3} hard {hard:.3}"
        );
        assert!(easy > 0.85, "easy-bin singleton accuracy should be high: {easy:.3}");
    }

    #[test]
    fn empty_set_is_worthless() {
        let (ens, h, scores) = fixture();
        let p = AccuracyProfile::fit(&ens, &h, &scores, 10);
        assert_eq!(p.utility(0.4, ModelSet::EMPTY), 0.0);
    }

    #[test]
    fn utility_vector_matches_point_queries() {
        let (ens, h, scores) = fixture();
        let p = AccuracyProfile::fit(&ens, &h, &scores, 10);
        let v = p.utility_vector(0.35);
        for set in ModelSet::all_nonempty(ens.m()) {
            assert_eq!(v[set.0 as usize], p.utility(0.35, set));
        }
    }

    #[test]
    fn eq3_estimation_is_close_to_exact_profiling() {
        // Fig. 20a: Eq. 3 estimates approximate the true accuracy closely.
        let ens = zoo::cifar_zoo(5, 3);
        let gen = SampleGenerator::new(ens.spec, DifficultyDist::Uniform, 9);
        let h = gen.batch(0, 1200);
        let scorer = DiscrepancyScorer::fit(&ens, &h, DifficultyMetric::Discrepancy);
        let scores = scorer.score_batch(&ens, &h);
        let exact = AccuracyProfile::fit(&ens, &h, &scores, 8);
        let estimated = AccuracyProfile::fit_with_cutoff(&ens, &h, &scores, 8, 3);
        let mse = estimated.mse_against(&exact);
        assert!(mse < 0.01, "Eq. 3 estimation MSE too large: {mse}");
    }

    #[test]
    fn bin_of_clamps() {
        let (ens, h, scores) = fixture();
        let p = AccuracyProfile::fit(&ens, &h, &scores, 10);
        assert_eq!(p.bin_of(-0.3), 0);
        assert_eq!(p.bin_of(0.0), 0);
        assert_eq!(p.bin_of(0.999), 9);
        assert_eq!(p.bin_of(1.0), 9);
        assert_eq!(p.bin_of(7.0), 9);
        drop(ens);
    }
}
