//! Dynamic-selection baselines: DES (FIRE-DES++-style) and the gating
//! network (§II, §V-C).
//!
//! Both pick a model subset from the query's *features alone*, ignoring
//! queue state — the two failure modes the paper's scheduler fixes. They
//! plug into the immediate-selection pipeline through
//! [`schemble_core::pipeline::SelectionPolicy`].
//!
//! * [`des::DesSelector`] — clusters the historical feature space (k-means,
//!   from scratch), estimates a per-region *competence score* for every
//!   model (its agreement rate with the ensemble inside the region), and
//!   selects the models whose competence clears a threshold in the arriving
//!   query's region.
//! * [`gating::GatingSelector`] — trains a gating network (same architecture
//!   family as the discrepancy predictor) to regress every model's
//!   per-query correctness, then thresholds the gate weights.

pub mod des;
pub mod experiment;
pub mod gating;
pub mod kmeans;

pub use des::DesSelector;
pub use experiment::{run_baseline, run_baseline_traced, train_des, train_gating, BaselineKind};
pub use gating::GatingSelector;
