//! The gating-network baseline (§II, §V-C, Fig. 2d).
//!
//! A network takes the query's features and emits one weight per base model;
//! training regresses each model's per-query *correctness* (agreement with
//! the ensemble) — "the gating network is trying to estimate whether
//! d(f(x;θ_k), E(x)) is large for every k". At inference, models whose gate
//! weight clears a threshold are selected.
//!
//! The paper's analysis predicts this baseline struggles: per-model
//! correctness is dominated by seed-dependent idiosyncratic noise the
//! features cannot explain, so the gate learns something close to each
//! model's *average* accuracy and "outputs similar weights for all samples".

use rand::Rng;
use schemble_core::pipeline::SelectionPolicy;
use schemble_data::Query;
use schemble_models::{Ensemble, ModelSet, Sample};
use schemble_nn::loss::bce_with_logits;
use schemble_nn::optim::Adam;
use schemble_nn::{Activation, Mlp};
use schemble_tensor::Matrix;

/// The trained gating selector.
#[derive(Debug, Clone)]
pub struct GatingSelector {
    gate: Mlp,
    /// Models with `σ(gate_k) ≥ threshold · max_k σ(gate_k)` are selected.
    pub relative_threshold: f64,
}

impl GatingSelector {
    /// Default relative threshold.
    pub const DEFAULT_THRESHOLD: f64 = 0.97;

    /// Trains the gate on historical samples (correctness vs the ensemble).
    pub fn fit(ensemble: &Ensemble, history: &[Sample], rng: &mut impl Rng) -> Self {
        assert!(!history.is_empty(), "cannot fit gating on empty history");
        let m = ensemble.m();
        let feat_dim = history[0].features.len();
        // Targets: 1 when model k agrees with the ensemble on the sample.
        let targets: Vec<Vec<f64>> = history
            .iter()
            .map(|s| {
                let reference = ensemble.ensemble_output(s);
                ensemble
                    .infer_all(s)
                    .iter()
                    .map(|o| f64::from(o.agrees_with(&reference, &ensemble.spec)))
                    .collect()
            })
            .collect();
        let features = Matrix::from_fn(history.len(), feat_dim, |r, c| history[r].features[c]);
        // Same architecture family as the discrepancy predictor (§VIII).
        let mut gate =
            Mlp::new(&[feat_dim, 32, 16, m], Activation::Relu, Activation::Identity, rng);
        let mut opt = Adam::new(0.01);
        gate.fit(&features, 60, 32, &mut opt, rng, |pred, idx| {
            let t = Matrix::from_fn(idx.len(), m, |r, c| targets[idx[r]][c]);
            bce_with_logits(pred, &t)
        });
        Self { gate, relative_threshold: Self::DEFAULT_THRESHOLD }
    }

    /// Gate weights (σ of the logits) for a feature vector.
    pub fn weights(&self, features: &[f64]) -> Vec<f64> {
        self.gate.infer_one(features).into_iter().map(|z| 1.0 / (1.0 + (-z).exp())).collect()
    }

    /// The subset selected for a feature vector.
    pub fn select_for(&self, features: &[f64]) -> ModelSet {
        let w = self.weights(features);
        let best = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut set = ModelSet::EMPTY;
        for (k, &wk) in w.iter().enumerate() {
            if wk >= best * self.relative_threshold {
                set = set.with(k);
            }
        }
        if set.is_empty() {
            set = ModelSet::singleton(0);
        }
        set
    }
}

impl SelectionPolicy for GatingSelector {
    fn select(&mut self, query: &Query, _ensemble: &Ensemble) -> ModelSet {
        self.select_for(&query.sample.features)
    }
    fn name(&self) -> String {
        "Gating".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_data::TaskKind;
    use schemble_sim::rng::stream_rng;
    use schemble_tensor::stats::{mean, std_dev};

    fn fixture() -> (Ensemble, Vec<Sample>, GatingSelector) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let history = gen.batch(0, 1000);
        let mut rng = stream_rng(3, "gating");
        let gate = GatingSelector::fit(&ens, &history, &mut rng);
        (ens, history, gate)
    }

    #[test]
    fn selects_nonempty_sets() {
        let (_, history, gate) = fixture();
        for s in history.iter().take(200) {
            assert!(!gate.select_for(&s.features).is_empty());
        }
    }

    #[test]
    fn gate_weights_track_average_model_quality() {
        let (ens, history, gate) = fixture();
        let m = ens.m();
        let mut avg = vec![0.0f64; m];
        for s in &history {
            for (a, w) in avg.iter_mut().zip(gate.weights(&s.features)) {
                *a += w;
            }
        }
        for a in &mut avg {
            *a /= history.len() as f64;
        }
        assert!(avg[2] > avg[0], "BERT weight {:.3} should beat BiLSTM {:.3}", avg[2], avg[0]);
    }

    #[test]
    fn gate_outputs_have_low_per_query_variance() {
        // The §V-C phenomenon: preferences are unlearnable from features, so
        // the gate's weights vary little across queries relative to their
        // mean level.
        let (_, history, gate) = fixture();
        let w0: Vec<f64> = history.iter().take(400).map(|s| gate.weights(&s.features)[2]).collect();
        let spread = std_dev(&w0);
        let level = mean(&w0);
        assert!(
            spread < 0.35 * level.max(0.1),
            "gate weight spread {spread:.3} suspiciously high vs level {level:.3}"
        );
    }

    #[test]
    fn deterministic_per_features() {
        let (_, history, gate) = fixture();
        let s = &history[0];
        assert_eq!(gate.select_for(&s.features), gate.select_for(&s.features));
    }
}
