//! Convenience runners wiring DES/Gating into the serving pipeline, so the
//! experiment drivers can sweep all six baselines of Table I uniformly.

use crate::des::DesSelector;
use crate::gating::GatingSelector;
use schemble_core::pipeline::{
    run_immediate_traced, AdmissionMode, Deployment, ResultAssembler, SelectionPolicy,
};
use schemble_data::Workload;
use schemble_metrics::RunSummary;
use schemble_models::{Ensemble, SampleGenerator};
use schemble_sim::rng::stream_rng;
use schemble_trace::TraceSink;
use std::sync::Arc;

/// The feature-based selection baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// FIRE-DES++-style dynamic ensemble selection.
    Des,
    /// Gating network with thresholded weights.
    Gating,
}

impl BaselineKind {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::Des => "DES",
            BaselineKind::Gating => "Gating",
        }
    }
}

/// Historical ids start above every serving workload (shared convention with
/// `SchembleArtifacts`).
const HISTORY_OFFSET: u64 = 1 << 41;

/// Trains a DES selector on `history_n` fresh historical samples.
pub fn train_des(
    ensemble: &Ensemble,
    generator: &SampleGenerator,
    history_n: usize,
    seed: u64,
) -> DesSelector {
    let history = generator.batch(HISTORY_OFFSET, history_n);
    let mut rng = stream_rng(seed, "des-train");
    DesSelector::fit(ensemble, &history, DesSelector::DEFAULT_REGIONS, &mut rng)
}

/// Trains a gating selector on `history_n` fresh historical samples.
pub fn train_gating(
    ensemble: &Ensemble,
    generator: &SampleGenerator,
    history_n: usize,
    seed: u64,
) -> GatingSelector {
    let history = generator.batch(HISTORY_OFFSET, history_n);
    let mut rng = stream_rng(seed, "gating-train");
    GatingSelector::fit(ensemble, &history, &mut rng)
}

/// Trains and runs one baseline over a workload on the identity deployment.
pub fn run_baseline(
    kind: BaselineKind,
    ensemble: &Ensemble,
    generator: &SampleGenerator,
    workload: &Workload,
    admission: AdmissionMode,
    history_n: usize,
    seed: u64,
) -> RunSummary {
    run_baseline_traced(
        kind,
        ensemble,
        generator,
        workload,
        admission,
        history_n,
        seed,
        TraceSink::disabled(),
    )
}

/// [`run_baseline`] with lifecycle events emitted into `trace`.
#[allow(clippy::too_many_arguments)]
pub fn run_baseline_traced(
    kind: BaselineKind,
    ensemble: &Ensemble,
    generator: &SampleGenerator,
    workload: &Workload,
    admission: AdmissionMode,
    history_n: usize,
    seed: u64,
    trace: Arc<TraceSink>,
) -> RunSummary {
    let mut policy: Box<dyn SelectionPolicy> = match kind {
        BaselineKind::Des => Box::new(train_des(ensemble, generator, history_n, seed)),
        BaselineKind::Gating => Box::new(train_gating(ensemble, generator, history_n, seed)),
    };
    run_immediate_traced(
        ensemble,
        &Deployment::identity(ensemble.m()),
        policy.as_mut(),
        &ResultAssembler::Direct,
        workload,
        admission,
        seed,
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_data::{DeadlinePolicy, PoissonTrace, TaskKind};

    #[test]
    fn both_baselines_run_end_to_end() {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let workload = Workload::generate(
            &gen,
            &PoissonTrace { rate_per_sec: 30.0, n: 200 },
            &DeadlinePolicy::constant_millis(120.0),
            7,
        );
        for kind in [BaselineKind::Des, BaselineKind::Gating] {
            let summary = run_baseline(kind, &ens, &gen, &workload, AdmissionMode::Reject, 400, 3);
            assert_eq!(summary.len(), 200, "{} lost queries", kind.label());
            assert!(summary.accuracy() > 0.2, "{} acc collapsed", kind.label());
        }
    }
}
