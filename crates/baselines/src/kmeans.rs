//! Lloyd's k-means over feature vectors — the region-clustering step of DES.

use rand::seq::index::sample as index_sample;
use rand::Rng;
use schemble_tensor::dist::euclidean_sq;

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
}

impl KMeans {
    /// Fits `k` clusters with Lloyd iterations (k-means++-free: random
    /// distinct initial points, which is ample for the low-dimensional
    /// feature spaces here).
    ///
    /// # Panics
    /// Panics if `points` is empty or `k == 0`.
    pub fn fit(points: &[Vec<f64>], k: usize, iters: usize, rng: &mut impl Rng) -> Self {
        assert!(!points.is_empty(), "cannot cluster zero points");
        assert!(k > 0, "need at least one cluster");
        let k = k.min(points.len());
        let mut centroids: Vec<Vec<f64>> =
            index_sample(rng, points.len(), k).into_iter().map(|i| points[i].clone()).collect();
        let dim = points[0].len();
        let mut assignment = vec![0usize; points.len()];
        for _ in 0..iters {
            // Assign.
            let mut moved = false;
            for (i, p) in points.iter().enumerate() {
                let best = nearest(&centroids, p);
                if assignment[i] != best {
                    assignment[i] = best;
                    moved = true;
                }
            }
            // Update.
            let mut sums = vec![vec![0.0f64; dim]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in points.iter().enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                for (s, &x) in sums[c].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for (dst, s) in centroids[c].iter_mut().zip(&sums[c]) {
                        *dst = s / counts[c] as f64;
                    }
                }
            }
            if !moved {
                break;
            }
        }
        Self { centroids }
    }

    /// Index of the region `point` belongs to.
    pub fn region_of(&self, point: &[f64]) -> usize {
        nearest(&self.centroids, point)
    }

    /// Number of regions.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = euclidean_sq(centroid, p);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_sim::rng::stream_rng;

    #[test]
    fn separates_two_blobs() {
        let mut rng = stream_rng(1, "kmeans");
        let mut points = Vec::new();
        for i in 0..200 {
            let base = if i % 2 == 0 { 0.0 } else { 10.0 };
            points.push(vec![base + rng.random_range(-0.5..0.5), base]);
        }
        let km = KMeans::fit(&points, 2, 20, &mut rng);
        let r0 = km.region_of(&[0.0, 0.0]);
        let r1 = km.region_of(&[10.0, 10.0]);
        assert_ne!(r0, r1, "blobs should land in different regions");
        // All near-origin points agree with the origin's region.
        for p in points.iter().filter(|p| p[1] == 0.0) {
            assert_eq!(km.region_of(p), r0);
        }
    }

    #[test]
    fn k_clamps_to_point_count() {
        let mut rng = stream_rng(2, "kmeans");
        let points = vec![vec![1.0], vec![2.0]];
        let km = KMeans::fit(&points, 10, 5, &mut rng);
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn region_of_is_deterministic() {
        let mut rng = stream_rng(3, "kmeans");
        let points: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i * 7 % 13) as f64]).collect();
        let km = KMeans::fit(&points, 4, 15, &mut rng);
        for p in &points {
            assert_eq!(km.region_of(p), km.region_of(p));
        }
    }
}
