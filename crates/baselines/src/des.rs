//! Dynamic ensemble selection (DES), in the FIRE-DES++ style (§II, §III-B).
//!
//! Training: cluster the historical feature space into regions; in each
//! region estimate every model's **competence score** (its agreement rate
//! with the ensemble's output on the region's samples). Inference: find the
//! arriving query's region and select the models whose competence clears a
//! threshold relative to the region's best model; if none clears it, fall
//! back to the single most competent model.
//!
//! DES ignores queue state entirely — the selection is a pure function of
//! the input features, which is exactly the property the paper's scheduler
//! criticises ("they both select models only based on the current query
//! features, regardless of the queue status").

use crate::kmeans::KMeans;
use rand::Rng;
use schemble_core::pipeline::SelectionPolicy;
use schemble_data::Query;
use schemble_models::{Ensemble, ModelSet, Sample};

/// The trained DES selector.
#[derive(Debug, Clone)]
pub struct DesSelector {
    regions: KMeans,
    /// `competence[region][model]` = agreement rate with the ensemble.
    competence: Vec<Vec<f64>>,
    /// Models within `threshold` of the region's best competence get picked.
    pub threshold: f64,
}

impl DesSelector {
    /// Default number of regions.
    pub const DEFAULT_REGIONS: usize = 12;
    /// Default competence slack.
    pub const DEFAULT_THRESHOLD: f64 = 0.03;

    /// Trains DES on historical samples.
    pub fn fit(
        ensemble: &Ensemble,
        history: &[Sample],
        k_regions: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!history.is_empty(), "cannot fit DES on empty history");
        let features: Vec<Vec<f64>> = history.iter().map(|s| s.features.clone()).collect();
        let regions = KMeans::fit(&features, k_regions, 25, rng);
        let m = ensemble.m();
        let mut hits = vec![vec![0usize; m]; regions.k()];
        let mut counts = vec![0usize; regions.k()];
        for s in history {
            let r = regions.region_of(&s.features);
            counts[r] += 1;
            let reference = ensemble.ensemble_output(s);
            let outputs = ensemble.infer_all(s);
            for (k, o) in outputs.iter().enumerate() {
                if o.agrees_with(&reference, &ensemble.spec) {
                    hits[r][k] += 1;
                }
            }
        }
        let competence =
            (0..regions.k())
                .map(|r| {
                    (0..m)
                        .map(|k| {
                            if counts[r] == 0 {
                                0.5
                            } else {
                                hits[r][k] as f64 / counts[r] as f64
                            }
                        })
                        .collect()
                })
                .collect();
        Self { regions, competence, threshold: Self::DEFAULT_THRESHOLD }
    }

    /// Competence vector of the region containing `features`.
    pub fn competences(&self, features: &[f64]) -> &[f64] {
        &self.competence[self.regions.region_of(features)]
    }

    /// The subset selected for a feature vector.
    pub fn select_for(&self, features: &[f64]) -> ModelSet {
        let comps = self.competences(features);
        let best = comps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut set = ModelSet::EMPTY;
        for (k, &c) in comps.iter().enumerate() {
            if c >= best - self.threshold {
                set = set.with(k);
            }
        }
        if set.is_empty() {
            // Degenerate region: fall back to the single best model.
            let k = comps
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite competence"))
                .map(|(k, _)| k)
                .unwrap_or(0);
            set = ModelSet::singleton(k);
        }
        set
    }
}

impl SelectionPolicy for DesSelector {
    fn select(&mut self, query: &Query, _ensemble: &Ensemble) -> ModelSet {
        self.select_for(&query.sample.features)
    }
    fn name(&self) -> String {
        "DES".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemble_data::TaskKind;
    use schemble_sim::rng::stream_rng;

    fn fixture() -> (Ensemble, Vec<Sample>, DesSelector) {
        let task = TaskKind::TextMatching;
        let ens = task.ensemble(1);
        let gen = task.default_generator(1);
        let history: Vec<Sample> = gen.batch(0, 1200);
        let mut rng = stream_rng(5, "des");
        let des = DesSelector::fit(&ens, &history, DesSelector::DEFAULT_REGIONS, &mut rng);
        (ens, history, des)
    }

    #[test]
    fn selection_is_never_empty() {
        let (_, history, des) = fixture();
        for s in history.iter().take(300) {
            assert!(!des.select_for(&s.features).is_empty());
        }
    }

    #[test]
    fn competences_reflect_model_quality() {
        // Averaged over regions, the strongest model (BERT) should out-score
        // the weakest (BiLSTM).
        let (ens, history, des) = fixture();
        let m = ens.m();
        let mut avg = vec![0.0f64; m];
        for s in &history {
            let comps = des.competences(&s.features);
            for k in 0..m {
                avg[k] += comps[k];
            }
        }
        for a in &mut avg {
            *a /= history.len() as f64;
        }
        assert!(avg[2] > avg[0], "BERT competence {:.3} should beat BiLSTM {:.3}", avg[2], avg[0]);
    }

    #[test]
    fn selection_ignores_queue_state_by_construction() {
        // Same features ⇒ same selection, no matter when asked.
        let (_, history, des) = fixture();
        let s = &history[0];
        let a = des.select_for(&s.features);
        let b = des.select_for(&s.features);
        assert_eq!(a, b);
    }

    #[test]
    fn tighter_threshold_selects_fewer_models() {
        let (_, history, mut des) = fixture();
        let wide: f64 = {
            des.threshold = 0.5;
            history.iter().take(200).map(|s| des.select_for(&s.features).len() as f64).sum()
        };
        let narrow: f64 = {
            des.threshold = 0.0;
            history.iter().take(200).map(|s| des.select_for(&s.features).len() as f64).sum()
        };
        assert!(narrow <= wide, "narrow {narrow} vs wide {wide}");
    }
}
